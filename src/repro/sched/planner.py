"""Cluster-wide migration planning: destination scoring and admission.

The paper's §III-B loop stops at a single host pair: the watermark
trigger fires and a migration is launched to *the* destination. This
planner generalizes it to a cluster — watermark alerts from every host
land in one FIFO queue, and each queued request is matched to the best
destination by a deterministic score:

* **headroom** — free memory at the destination relative to what the VM
  needs (its reservation at the source), so migrations relieve pressure
  instead of moving it;
* **rack locality vs fault-domain anti-affinity** — a same-rack move
  avoids the ToR uplink (cheaper, faster); a cross-rack move leaves the
  failing host's fault domain (survives a rack crash). The two weights
  express the trade-off; the default favors spreading;
* **congestion** — destinations already receiving migrations, and rack
  uplinks already carrying them, are penalized and capped;
* **health** — DOWN / RECENTLY_FAILED hosts are never chosen, DEGRADED
  hosts are scored down (see :class:`~repro.sched.health.HostHealthTracker`).

Admission limits (per-host and per-uplink concurrent migrations) bound
the thundering herd when many hosts alert at once; requests that cannot
be admitted stay queued in FIFO order and are re-examined whenever a
migration completes or a host's health changes.

Churn control (the rebalance ping-pong fix) adds four mechanisms on
top of the score:

* **in-flight demand reservation** — every active plan charges its
  ``demand_bytes`` against its destination's free memory, so concurrent
  plans in one pump cannot collectively overcommit a host below
  ``min_headroom_bytes``;
* **post-migration watermark projection** — a destination whose
  projected usage (current + reserved + the incoming VM's demand) would
  itself cross ``project_watermark`` is rejected, closing the
  shed-chain loop where the migration that relieved pressure creates
  the next alert;
* **hysteresis** — a per-VM ``move_cooldown_s`` refuses to re-shed a
  VM that just landed, and a ``min_gain`` margin refuses moves whose
  destination is not decisively better than staying put (Avin et al.'s
  destination-swap amortization);
* **pressure forecast** — an EWMA level + rate estimate per host, fed
  from the world's usage feed (:meth:`~repro.cluster.world.World.
  start_usage_feed`), replaces the instantaneous sample in the
  headroom/projection terms so a host that is *filling* is scored by
  where it is heading, not where it momentarily is.

Everything is deterministic: ties break lexicographically, the queue is
strictly ordered, and the decision log (:attr:`MigrationPlanner.log`)
of two same-seed runs is identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.sched.health import HostHealthTracker
from repro.sched.topology import Topology
from repro.vm.vm import VmState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.world import World

__all__ = ["MigrationPlan", "MigrationPlanner", "PlannerConfig"]


@dataclass(frozen=True)
class PlannerConfig:
    """Scoring weights, admission limits, and churn control."""

    #: concurrent migrations a host may participate in (source or dest)
    max_per_host: int = 1
    #: concurrent inter-rack migrations per rack uplink direction
    max_per_uplink: int = 2
    #: weight of the destination's free-memory fraction
    headroom_weight: float = 1.0
    #: bonus for staying inside the source's rack (no uplink crossing)
    locality_weight: float = 0.2
    #: bonus per tier of fault-domain separation from the source (×1
    #: cross-rack, ×2 cross-pod, ×3 cross-AZ; flat topologies are ×1)
    spread_weight: float = 0.5
    #: score multiplier for a DEGRADED destination
    degraded_penalty: float = 0.5
    #: penalty per migration already in flight toward the destination's
    #: rack downlink (congestion avoidance)
    congestion_weight: float = 0.25
    #: hard floor on destination free memory after admission (bytes)
    min_headroom_bytes: float = 0.0
    #: charge every active plan's demand against its destination's free
    #: memory (off = the pre-reservation planner, the ablation baseline)
    reserve_in_flight: bool = True
    #: reject destinations whose projected usage (current + reserved +
    #: incoming demand) would cross this fraction of usable memory —
    #: set it to the scenario's high watermark; None disables
    project_watermark: Optional[float] = None
    #: refuse to re-shed a VM within this window of its last landing
    move_cooldown_s: float = 0.0
    #: minimum score improvement over staying at the source before a
    #: move is worth its migration cost
    min_gain: float = 0.0
    #: EWMA smoothing weight for the per-host usage forecast (0 = use
    #: the instantaneous sample; requires the world's usage feed)
    forecast_alpha: float = 0.0
    #: how far ahead the forecast extrapolates the usage trend
    forecast_horizon_s: float = 5.0
    #: sampling period the control plane starts the usage feed with
    forecast_sample_interval_s: float = 1.0

    def __post_init__(self):
        if self.max_per_host < 1 or self.max_per_uplink < 1:
            raise ValueError("admission limits must be at least 1")
        if not 0.0 <= self.degraded_penalty <= 1.0:
            raise ValueError("degraded_penalty must be in [0, 1]")
        if self.project_watermark is not None \
                and not 0.0 < self.project_watermark <= 1.5:
            raise ValueError("project_watermark must be in (0, 1.5]")
        if self.move_cooldown_s < 0 or self.min_gain < 0:
            raise ValueError("hysteresis knobs must be non-negative")
        if not 0.0 <= self.forecast_alpha <= 1.0:
            raise ValueError("forecast_alpha must be in [0, 1]")
        if self.forecast_horizon_s < 0 \
                or self.forecast_sample_interval_s <= 0:
            raise ValueError("forecast timing must be positive")


@dataclass
class MigrationPlan:
    """One planned migration: who moves where, and why."""

    seq: int
    vm: str
    src: str
    dst: str
    score: float
    #: bytes the plan expects to need at the destination
    demand_bytes: float
    #: planning time (simulation seconds)
    at: float
    #: times this plan was re-pointed at a new destination
    replans: int = 0
    #: destinations already tried and abandoned (cumulative across
    #: replans, so a third attempt cannot bounce back to the first)
    tried: tuple = ()
    #: destination free bytes minus in-flight reservations minus this
    #: plan's demand, at admission time (the overcommit audit trail;
    #: recorded even when ``reserve_in_flight`` is off)
    headroom_bytes: float = 0.0
    #: completion time (simulation seconds), set by ``on_plan_done``
    done_at: Optional[float] = None

    def describe(self) -> str:
        return (f"plan#{self.seq} {self.vm}: {self.src}->{self.dst} "
                f"score={self.score:.3f} @{self.at:g}s")


@dataclass
class _Request:
    seq: int
    vm: str
    src: str


class _HostForecast:
    """EWMA level + rate of one host's resident bytes."""

    __slots__ = ("level", "rate", "t", "v")

    def __init__(self, t: float, v: float):
        self.level = v
        self.rate = 0.0
        self.t = t
        self.v = v

    def update(self, alpha: float, t: float, v: float) -> None:
        dt = t - self.t
        if dt > 0:
            self.rate = alpha * ((v - self.v) / dt) \
                + (1.0 - alpha) * self.rate
        self.level = alpha * v + (1.0 - alpha) * self.level
        self.t = t
        self.v = v

    def projected(self, horizon_s: float) -> float:
        return self.level + self.rate * horizon_s


class MigrationPlanner:
    """Cluster-wide destination selection with admission control.

    ``dispatch`` is the control plane's launcher: it receives a
    :class:`MigrationPlan` and must start the migration (typically via a
    :class:`~repro.faults.MigrationSupervisor`), calling
    :meth:`on_plan_done` when the final attempt ends. Destinations are
    drawn from ``world.hosts`` (machines with a memory manager); hosts
    can be excluded with ``exclude_hosts`` (e.g. VMD-donor-only hosts).
    """

    def __init__(self, world: "World",
                 topology: Optional[Topology] = None,
                 health: Optional[HostHealthTracker] = None,
                 config: Optional[PlannerConfig] = None,
                 dispatch: Optional[Callable[[MigrationPlan], None]] = None,
                 exclude_hosts: tuple = ()):
        self.world = world
        self.topology = topology if topology is not None else world.topology
        self.health = health
        self.config = config or PlannerConfig()
        self.dispatch = dispatch
        self.exclude_hosts = set(exclude_hosts)
        self.queue: list[_Request] = []
        #: in-flight plans by VM name
        self.active: dict[str, MigrationPlan] = {}
        #: completed/failed plans in completion order
        self.completed: list[tuple[MigrationPlan, str]] = []
        #: every decision, in order — the determinism witness
        self.log: list[str] = []
        #: deferral counts by reason (no-destination, source-at-capacity,
        #: insufficient-gain, move-cooldown) — cheap observability that
        #: works without a tracer
        self.deferrals: dict[str, int] = {}
        self._seq = 0
        #: per-host in-flight migration counts, maintained incrementally
        #: alongside ``active`` so admission checks are O(1) instead of
        #: scanning every in-flight plan per candidate host
        self._inflight: dict[str, int] = {}
        #: bytes reserved at each destination by active plans
        self._reserved: dict[str, float] = {}
        #: bytes reserved by admitted-but-not-yet-placed boots
        #: (:meth:`reserve_boot`); shares one headroom truth with the
        #: migration ledger via :meth:`reserved_on`
        self._boot_reserved: dict[str, float] = {}
        #: vm name -> sim time its last plan completed (move cooldown)
        self._landed_at: dict[str, float] = {}
        #: per-host EWMA pressure forecast, fed by ``observe_usage``
        self._forecast: dict[str, _HostForecast] = {}
        #: sorted candidate host names, keyed on the exact host-name set
        #: (an equal-size remove+add must invalidate, not just growth)
        self._hosts_sorted: list[str] = []
        self._hosts_key: frozenset = frozenset()
        #: re-entrancy guard: a dispatch that completes synchronously
        #: re-enters pump() via on_plan_done; the inner call only flags
        #: a re-pump so the outer loop never double-dispatches from a
        #: stale queue snapshot
        self._pumping = False
        self._repump = False
        if health is not None:
            health.subscribe(self._on_health_change)

    @property
    def tracer(self):
        """The world's trace sink (read at event time: a tracer attached
        after planner construction is still honored)."""
        return self.world.tracer

    @property
    def metrics(self):
        """The world's live-metrics sink (same read-at-use contract)."""
        return self.world.metrics

    # -- intake --------------------------------------------------------------
    def request(self, vm_name: str, src_host: str,
                ignore_cooldown: bool = False) -> bool:
        """Queue a migration request from a watermark alert.

        Returns True when the request was queued or dispatched. Returns
        False when this call did *not* take responsibility for the VM —
        a duplicate of a queued/in-flight request, or a VM still inside
        its move cooldown — so the alerting trigger stays armed and the
        crossing re-fires instead of stranding the host.

        ``ignore_cooldown`` bypasses the per-VM move cooldown: an
        evacuation (decommission-drain) must move a just-landed VM
        anyway, because its host is going away.
        """
        if vm_name in self.active or \
                any(r.vm == vm_name for r in self.queue):
            return False
        if not ignore_cooldown and self.in_move_cooldown(vm_name):
            landed = self._landed_at[vm_name]
            self._defer(None, vm_name, "move-cooldown",
                        until=landed + self.config.move_cooldown_s)
            return False
        self._seq += 1
        req = _Request(self._seq, vm_name, src_host)
        self.queue.append(req)
        self.log.append(f"request#{req.seq} {vm_name} from {src_host} "
                        f"@{self.world.now:g}s")
        if self.tracer.enabled:
            self.tracer.instant(
                "planner", "request", cat="planner",
                args={"seq": req.seq, "vm": vm_name, "src": src_host})
        self.pump()
        return True

    def cancel(self, vm_name: str) -> bool:
        """Drop any queued (not yet admitted) request for ``vm_name``.

        Fleet departures call this: a VM that left the cluster must not
        be admitted off a stale watermark alert. Active plans are not
        touched — the supervisor owns in-flight migrations. Returns
        True when a queued request was removed."""
        removed = False
        for req in list(self.queue):
            if req.vm == vm_name:
                self.queue.remove(req)
                removed = True
                self.log.append(f"cancel#{req.seq} {vm_name} "
                                f"@{self.world.now:g}s")
                if self.tracer.enabled:
                    self.tracer.instant(
                        "planner", "cancel", cat="planner",
                        args={"seq": req.seq, "vm": vm_name})
        return removed

    # -- bookkeeping ---------------------------------------------------------
    def _candidates(self) -> list[str]:
        """Sorted host names, cached on the host-name *set* (not its
        length: an equal-size remove+add would serve a stale list and
        KeyError in scoring)."""
        key = frozenset(self.world.hosts)
        if key != self._hosts_key:
            self._hosts_key = key
            self._hosts_sorted = sorted(key)
        return self._hosts_sorted

    def _add_active(self, plan: MigrationPlan) -> None:
        self.active[plan.vm] = plan
        for host in (plan.src, plan.dst):
            self._inflight[host] = self._inflight.get(host, 0) + 1
        self._reserved[plan.dst] = \
            self._reserved.get(plan.dst, 0.0) + plan.demand_bytes

    def _remove_active(self, vm: str) -> Optional[MigrationPlan]:
        plan = self.active.pop(vm, None)
        if plan is not None:
            for host in (plan.src, plan.dst):
                n = self._inflight.get(host, 0) - 1
                if n > 0:
                    self._inflight[host] = n
                else:
                    self._inflight.pop(host, None)
            left = self._reserved.get(plan.dst, 0.0) - plan.demand_bytes
            if left > 0 and self._inflight.get(plan.dst, 0) > 0:
                self._reserved[plan.dst] = left
            else:
                self._reserved.pop(plan.dst, None)
        return plan

    def _inflight_on(self, host: str) -> int:
        return self._inflight.get(host, 0)

    def reserved_on(self, host: str) -> float:
        """Bytes in-flight work will claim at ``host`` when it lands:
        active migration plans *plus* admitted boots still inside their
        boot delay. Every admission path (migration scoring, directed
        moves, initial placement) charges against this one number."""
        return self._reserved.get(host, 0.0) \
            + self._boot_reserved.get(host, 0.0)

    # -- boot reservations ----------------------------------------------------
    def reserve_boot(self, host: str, demand_bytes: float) -> None:
        """Charge an admitted boot against ``host`` until it is placed.

        A boot decision is not a memory registration: between the
        placement choice and the VM's actual ``place_vm`` (a boot delay,
        an image fetch), the host's ``free_bytes()`` still shows the old
        headroom. Without this charge a planner pump in that window can
        reserve migrations into the same bytes and overcommit the host.
        Call :meth:`release_boot` when the VM lands (or the boot is
        abandoned).
        """
        if demand_bytes <= 0:
            return
        self._boot_reserved[host] = \
            self._boot_reserved.get(host, 0.0) + demand_bytes

    def release_boot(self, host: str, demand_bytes: float) -> None:
        """Release a boot reservation taken by :meth:`reserve_boot`."""
        left = self._boot_reserved.get(host, 0.0) - demand_bytes
        if left > 1e-9:
            self._boot_reserved[host] = left
        else:
            self._boot_reserved.pop(host, None)

    def in_move_cooldown(self, vm_name: str) -> bool:
        """True while ``vm_name`` is inside its post-landing move
        cooldown (rebalancers consult this before proposing a move)."""
        cooldown = self.config.move_cooldown_s
        if cooldown <= 0:
            return False
        landed = self._landed_at.get(vm_name)
        return landed is not None and self.world.now - landed < cooldown

    def _inflight_crossing(self, src: str, dst: str) -> int:
        """Inter-rack migrations sharing either uplink of this path."""
        topo = self.topology
        if topo is None or topo.same_rack(src, dst):
            return 0
        rs, rd = topo.rack_of(src), topo.rack_of(dst)
        n = 0
        for p in self.active.values():
            prs, prd = topo.rack_of(p.src), topo.rack_of(p.dst)
            if prs == prd:
                continue
            if prs == rs or prd == rd:
                n += 1
        return n

    def _demand_of(self, vm_name: str, src: str) -> float:
        """Bytes the VM will want at the destination (its reservation)."""
        host = self.world.hosts.get(src)
        if host is not None and host.memory.has_vm(vm_name):
            return host.memory.binding(vm_name).cgroup.reservation_bytes
        vm = self.world.vms.get(vm_name)
        return vm.memory_bytes if vm is not None else 0.0

    # -- pressure forecast ----------------------------------------------------
    def observe_usage(self, host: str, t: float, used_bytes: float) -> None:
        """Feed one usage sample (wired to the world's usage feed)."""
        alpha = self.config.forecast_alpha
        if alpha <= 0:
            return
        fc = self._forecast.get(host)
        if fc is None:
            self._forecast[host] = _HostForecast(t, used_bytes)
        else:
            if self.metrics.enabled:
                # how far the last projection missed this sample
                predicted = fc.projected(t - fc.t)
                self.metrics.gauge(
                    f"planner.forecast_error.{host}").set(
                        abs(predicted - used_bytes))
            fc.update(alpha, t, used_bytes)

    def _usage_estimate(self, host_name: str, mem) -> float:
        """Near-future resident bytes: the EWMA forecast when enabled,
        never below the instantaneous sample (a host that is filling is
        scored by where it is heading; a transient dip is not trusted)."""
        inst = mem.total_resident_bytes()
        if self.config.forecast_alpha <= 0:
            return inst
        fc = self._forecast.get(host_name)
        if fc is None:
            return inst
        return max(inst, fc.projected(self.config.forecast_horizon_s))

    # -- scoring -------------------------------------------------------------
    def score_destination(self, vm_name: str, src: str, dst: str,
                          demand: Optional[float] = None) -> Optional[float]:
        """Deterministic destination score; None = ineligible.

        ``demand`` is the VM's memory demand if the caller already knows
        it — the admission loops compute it once per request instead of
        once per candidate host.
        """
        cfg = self.config
        if dst == src or dst in self.exclude_hosts:
            return None
        if self.health is not None and not self.health.placeable(dst):
            return None
        host = self.world.hosts[dst]
        mem = host.memory
        usable = mem.usable_bytes()
        if usable <= 0:
            return None
        if demand is None:
            demand = self._demand_of(vm_name, src)
        reserved = self.reserved_on(dst) if cfg.reserve_in_flight else 0.0
        # Hard admission floor on *instantaneous* free memory, after
        # charging every in-flight plan already headed here.
        if mem.free_bytes() - reserved - demand < cfg.min_headroom_bytes:
            return None
        used_est = self._usage_estimate(dst, mem)
        if cfg.project_watermark is not None and \
                used_est + reserved + demand \
                > cfg.project_watermark * usable:
            return None  # the landing itself would cross the watermark
        free_est = usable - used_est - reserved
        score = cfg.headroom_weight * max(0.0, free_est) / usable
        topo = self.topology
        if topo is not None and topo.rack_of(src) is not None \
                and topo.rack_of(dst) is not None:
            # Anti-affinity scales with the deepest domain left behind:
            # staying in-rack earns the locality bonus; crossing racks /
            # pods / AZs earns spread_weight × tier distance (1 on flat
            # topologies — identical to the historical rack-only bonus).
            dist = topo.tier_distance(src, dst)
            score += (cfg.locality_weight if dist == 0
                      else cfg.spread_weight * dist)
        score -= cfg.congestion_weight * self._inflight_on(dst)
        if self.health is not None and not self.health.is_up(dst):
            score *= cfg.degraded_penalty  # DEGRADED (placeable, impaired)
        return score

    def _stay_score(self, src: str) -> Optional[float]:
        """The headroom term of *not* moving: what the source looks like
        as a destination. The min_gain margin compares against this."""
        host = self.world.hosts.get(src)
        if host is None:
            return None
        usable = host.memory.usable_bytes()
        if usable <= 0:
            return None
        free_est = usable - self._usage_estimate(src, host.memory) \
            - (self.reserved_on(src) if self.config.reserve_in_flight
               else 0.0)
        return self.config.headroom_weight * max(0.0, free_est) / usable

    def _best_destination(self, req: _Request, collect: bool = False):
        """Best eligible destination for ``req`` (None = none).

        With ``collect`` (tracing), returns ``(best, scored, reason)``
        where ``scored`` lists every candidate that survived admission
        with its score — the planner-decision event's evidence — and
        ``reason`` names why no destination was chosen.
        """
        cfg = self.config
        best: Optional[tuple[str, float]] = None
        scored: list[tuple[str, float]] = []
        reason = "no-destination"
        demand = self._demand_of(req.vm, req.src)
        for dst in self._candidates():
            # Cheap admission pre-filters before the scoring work.
            if self._inflight_on(dst) >= cfg.max_per_host:
                continue
            if self._inflight_crossing(req.src, dst) >= cfg.max_per_uplink:
                continue
            score = self.score_destination(req.vm, req.src, dst,
                                           demand=demand)
            if score is None:
                continue
            if collect:
                scored.append((dst, score))
            if best is None or score > best[1]:
                best = (dst, score)
        if best is not None and cfg.min_gain > 0:
            stay = self._stay_score(req.src)
            if stay is not None and best[1] < stay + cfg.min_gain:
                best, reason = None, "insufficient-gain"
        if collect:
            return best, scored, reason
        return best, reason

    def _defer(self, seq: Optional[int], vm: str, reason: str,
               until: Optional[float] = None) -> None:
        self.deferrals[reason] = self.deferrals.get(reason, 0) + 1
        if self.metrics.enabled:
            self.metrics.inc(f"planner.deferred.{reason}")
        if reason == "move-cooldown":
            # one-shot, request-time decision: log it (pump-time deferrals
            # recur every pump and would swamp the decision log)
            self.log.append(f"defer {vm}: move-cooldown until {until:g}s "
                            f"@{self.world.now:g}s")
        if self.tracer.enabled:
            args = {"vm": vm, "reason": reason}
            if seq is not None:
                args["seq"] = seq
            if until is not None:
                args["until"] = until
            self.tracer.instant("planner", "deferred", cat="planner",
                                args=args)

    # -- the pump ------------------------------------------------------------
    def pump(self) -> int:
        """Admit every queued request that can run now (FIFO order).

        Returns the number of plans dispatched. Called from
        :meth:`request`, :meth:`on_plan_done`, and health transitions;
        safe to call any time, including re-entrantly — a nested call
        (a dispatch completing synchronously) only requests another
        pass, so the outer loop's queue snapshot can never dispatch a
        request the inner call already handled.
        """
        if self._pumping:
            self._repump = True
            return 0
        self._pumping = True
        try:
            dispatched = 0
            while True:
                self._repump = False
                dispatched += self._pump_pass()
                if not self._repump:
                    return dispatched
        finally:
            self._pumping = False

    def _pump_pass(self) -> int:
        dispatched = 0
        tr = self.tracer
        cfg = self.config
        for req in list(self.queue):
            if req not in self.queue or req.vm in self.active:
                continue  # handled while this snapshot was in flight
            if self._inflight_on(req.src) >= cfg.max_per_host:
                self._defer(req.seq, req.vm, "source-at-capacity")
                continue
            scored: list[tuple[str, float]] = []
            if tr.enabled:
                best, scored, reason = self._best_destination(
                    req, collect=True)
            else:
                best, reason = self._best_destination(req)
            if best is None:
                self._defer(req.seq, req.vm, reason)
                continue
            dst, score = best
            demand = self._demand_of(req.vm, req.src)
            headroom = self.world.hosts[dst].memory.free_bytes() \
                - self.reserved_on(dst) - demand
            plan = MigrationPlan(
                seq=req.seq, vm=req.vm, src=req.src, dst=dst, score=score,
                demand_bytes=demand, at=self.world.now,
                headroom_bytes=headroom)
            self.queue.remove(req)
            self._add_active(plan)
            self.log.append(plan.describe())
            if tr.enabled:
                tr.instant(
                    "planner", "plan", cat="planner",
                    args={"seq": plan.seq, "vm": plan.vm, "src": plan.src,
                          "dst": plan.dst, "score": round(plan.score, 6),
                          "headroom_bytes": round(plan.headroom_bytes, 3),
                          "candidates": [
                              {"dst": d, "score": round(s, 6)}
                              for d, s in scored]})
            dispatched += 1
            if self.dispatch is not None:
                self.dispatch(plan)
        if tr.enabled:
            tr.counter("planner", "pressure", values={
                "active": len(self.active),
                "queued": len(self.queue),
                "reserved_bytes": sum(self._reserved.values())})
        if self.metrics.enabled:
            m = self.metrics
            if dispatched:
                m.counter("planner.plans").inc(dispatched)
            m.gauge("planner.active_plans").set(len(self.active))
            m.gauge("planner.queued").set(len(self.queue))
        return dispatched

    # -- directed admission ----------------------------------------------------
    def direct(self, vm_name: str, src_host: str, dst: str,
               credit_bytes: float = 0.0,
               ignore_cooldown: bool = False) -> Optional[MigrationPlan]:
        """Admit a plan whose destination the *caller* chose.

        The destination-swap rebalancer and decommission-drain know
        exactly which VM goes where; this path runs the same admission
        checks as :meth:`pump` (caps, health, reservation-aware
        headroom) and charges the same ledger, but skips queueing and
        destination scoring. Returns the dispatched plan, or None when
        the move is not admissible *right now* (the caller retries on
        its next round — directed moves are never queued).

        ``credit_bytes`` is headroom the caller knows is about to free
        up at ``dst`` — the outbound half of a destination swap. It is
        credited only in this admission check; the plan's recorded
        ``headroom_bytes`` audit includes it, so a negative value there
        still flags a genuine overcommit.
        """
        cfg = self.config
        if vm_name in self.active or \
                any(r.vm == vm_name for r in self.queue):
            return None
        if not ignore_cooldown and self.in_move_cooldown(vm_name):
            self._defer(None, vm_name, "move-cooldown",
                        until=self._landed_at[vm_name]
                        + cfg.move_cooldown_s)
            return None
        if dst == src_host or dst in self.exclude_hosts \
                or dst not in self.world.hosts:
            return None
        if self.health is not None and not self.health.placeable(dst):
            return None
        if self._inflight_on(src_host) >= cfg.max_per_host \
                or self._inflight_on(dst) >= cfg.max_per_host:
            return None
        if self._inflight_crossing(src_host, dst) >= cfg.max_per_uplink:
            return None
        demand = self._demand_of(vm_name, src_host)
        mem = self.world.hosts[dst].memory
        reserved = self.reserved_on(dst) if cfg.reserve_in_flight else 0.0
        headroom = mem.free_bytes() + credit_bytes - reserved - demand
        if headroom < cfg.min_headroom_bytes:
            return None
        self._seq += 1
        plan = MigrationPlan(
            seq=self._seq, vm=vm_name, src=src_host, dst=dst, score=0.0,
            demand_bytes=demand, at=self.world.now,
            headroom_bytes=headroom)
        self._add_active(plan)
        self.log.append(f"direct#{plan.seq} {vm_name}: "
                        f"{src_host}->{dst} @{self.world.now:g}s")
        if self.tracer.enabled:
            self.tracer.instant(
                "planner", "direct", cat="planner",
                args={"seq": plan.seq, "vm": vm_name, "src": src_host,
                      "dst": dst,
                      "headroom_bytes": round(headroom, 3),
                      "credit_bytes": round(float(credit_bytes), 3)})
        if self.dispatch is not None:
            self.dispatch(plan)
        return plan

    # -- lifecycle callbacks --------------------------------------------------
    def on_plan_done(self, plan: MigrationPlan, outcome: str) -> None:
        """Release the plan's admission slots and re-pump the queue."""
        self._remove_active(plan.vm)
        plan.done_at = self.world.now
        if outcome == "completed":
            self._landed_at[plan.vm] = self.world.now
        self.completed.append((plan, outcome))
        self.log.append(f"done#{plan.seq} {plan.vm} -> {plan.dst}: "
                        f"{outcome} @{self.world.now:g}s")
        if self.tracer.enabled:
            self.tracer.instant(
                "planner", "done", cat="planner",
                args={"seq": plan.seq, "vm": plan.vm, "dst": plan.dst,
                      "outcome": outcome})
        self.pump()

    def replan(self, plan: MigrationPlan,
               exclude: frozenset = frozenset()) -> Optional[MigrationPlan]:
        """Point an active plan at a new destination (old one failing).

        Returns the updated plan, or None when no eligible destination
        exists (the caller should park or give up). The per-host slot on
        the abandoned destination is freed by dropping it from
        ``active`` before re-scoring. Exclusion is cumulative: every
        destination this plan already tried (``plan.tried``) stays
        excluded, so after two failures the VM cannot bounce back to the
        first dead end. ``min_gain`` does not apply — the current
        destination is failing, so any eligible escape beats staying.
        """
        current = self.active.get(plan.vm)
        if current is None:
            return None
        self._remove_active(plan.vm)  # free its slots while re-scoring
        tried = frozenset(plan.tried) | {plan.dst} | exclude
        best: Optional[tuple[str, float]] = None
        demand = self._demand_of(plan.vm, plan.src)
        for dst in self._candidates():
            if dst in tried:
                continue
            if self._inflight_on(dst) >= self.config.max_per_host:
                continue
            if self._inflight_crossing(plan.src, dst) \
                    >= self.config.max_per_uplink:
                continue
            score = self.score_destination(plan.vm, plan.src, dst,
                                           demand=demand)
            if score is None:
                continue
            if best is None or score > best[1]:
                best = (dst, score)
        if best is None:
            self._add_active(current)  # keep the old slots
            self.log.append(f"replan#{plan.seq} {plan.vm}: no destination")
            if self.tracer.enabled:
                self.tracer.instant(
                    "planner", "replan", cat="planner",
                    args={"seq": plan.seq, "vm": plan.vm,
                          "outcome": "no-destination"})
            return None
        dst, score = best
        headroom = self.world.hosts[dst].memory.free_bytes() \
            - self.reserved_on(dst) - plan.demand_bytes
        new = MigrationPlan(
            seq=plan.seq, vm=plan.vm, src=plan.src, dst=dst, score=score,
            demand_bytes=plan.demand_bytes, at=self.world.now,
            replans=plan.replans + 1, tried=plan.tried + (plan.dst,),
            headroom_bytes=headroom)
        self._add_active(new)
        self.log.append(f"replan#{new.seq} {new.vm}: "
                        f"{plan.dst} -> {new.dst} @{self.world.now:g}s")
        if self.tracer.enabled:
            self.tracer.instant(
                "planner", "replan", cat="planner",
                args={"seq": new.seq, "vm": new.vm, "old_dst": plan.dst,
                      "dst": new.dst, "score": round(new.score, 6),
                      "tried": list(new.tried)})
        return new

    def _on_health_change(self, host: str, old, new) -> None:
        # capacity may have returned (UP) or appeared (a dead host's VMs
        # freed memory elsewhere) — either way, re-examine the queue
        self.pump()

    # -- initial placement ----------------------------------------------------
    def _rack_loads(self) -> dict[str, int]:
        """Live VMs per rack, counted from the world's VM registry.

        Counting through ``world.vms`` (each VM knows its current host)
        never trips over rack members that are not in ``world.hosts``
        (VMD donors, client hosts) and does not count terminated VMs as
        load.
        """
        topo = self.topology
        loads: dict[str, int] = {}
        for vm in self.world.vms.values():
            if vm.state is VmState.TERMINATED:
                continue
            rack = topo.rack_of(vm.host)
            if rack is not None:
                loads[rack] = loads.get(rack, 0) + 1
        return loads

    def initial_placement(self, memory_demand_bytes: float,
                          exclude: frozenset = frozenset(),
                          reserve: bool = False) -> Optional[str]:
        """Pick the host for a *new* VM: healthy, most free memory, and
        spread across racks (fewest VMs in the candidate's rack first).

        Applies the same admission terms as migration scoring: in-flight
        reservations are charged against free memory and the watermark
        projection rejects hosts the arrival would push over.

        With ``reserve=True`` the chosen host is charged
        ``memory_demand_bytes`` in the boot-reservation ledger
        (:meth:`reserve_boot`), so migrations planned before the VM's
        memory is actually registered cannot overcommit it; the caller
        must :meth:`release_boot` once the VM is placed (or the boot
        abandoned).

        Returns None when no placeable host has the demanded headroom.
        """
        cfg = self.config
        topo = self.topology
        rack_loads = self._rack_loads() if topo is not None else {}
        best: Optional[tuple[tuple, str]] = None
        for name in self._candidates():
            if name in self.exclude_hosts or name in exclude:
                continue
            if self.health is not None and not self.health.placeable(name):
                continue
            host = self.world.hosts[name]
            mem = host.memory
            reserved = self.reserved_on(name) if cfg.reserve_in_flight \
                else 0.0
            free = mem.free_bytes() - reserved
            if free - memory_demand_bytes < cfg.min_headroom_bytes:
                continue
            if cfg.project_watermark is not None:
                usable = mem.usable_bytes()
                if self._usage_estimate(name, mem) + reserved \
                        + memory_demand_bytes \
                        > cfg.project_watermark * usable:
                    continue
            rack = topo.rack_of(name) if topo is not None else None
            rack_load = rack_loads.get(rack, 0) if rack is not None else 0
            # lexicographic: emptiest rack, then most free, then name
            key = (rack_load, -free, name)
            if best is None or key < best[0]:
                best = (key, name)
        if best is None:
            return None
        if reserve:
            self.reserve_boot(best[1], memory_demand_bytes)
        self.log.append(f"place new vm ({memory_demand_bytes:g} B) "
                        f"-> {best[1]} @{self.world.now:g}s")
        if self.tracer.enabled:
            self.tracer.instant(
                "planner", "place", cat="planner",
                args={"demand_bytes": float(memory_demand_bytes),
                      "host": best[1], "reserved": bool(reserve)})
        return best[1]
