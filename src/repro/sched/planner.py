"""Cluster-wide migration planning: destination scoring and admission.

The paper's §III-B loop stops at a single host pair: the watermark
trigger fires and a migration is launched to *the* destination. This
planner generalizes it to a cluster — watermark alerts from every host
land in one FIFO queue, and each queued request is matched to the best
destination by a deterministic score:

* **headroom** — free memory at the destination relative to what the VM
  needs (its reservation at the source), so migrations relieve pressure
  instead of moving it;
* **rack locality vs fault-domain anti-affinity** — a same-rack move
  avoids the ToR uplink (cheaper, faster); a cross-rack move leaves the
  failing host's fault domain (survives a rack crash). The two weights
  express the trade-off; the default favors spreading;
* **congestion** — destinations already receiving migrations, and rack
  uplinks already carrying them, are penalized and capped;
* **health** — DOWN / RECENTLY_FAILED hosts are never chosen, DEGRADED
  hosts are scored down (see :class:`~repro.sched.health.HostHealthTracker`).

Admission limits (per-host and per-uplink concurrent migrations) bound
the thundering herd when many hosts alert at once; requests that cannot
be admitted stay queued in FIFO order and are re-examined whenever a
migration completes or a host's health changes.

Everything is deterministic: ties break lexicographically, the queue is
strictly ordered, and the decision log (:attr:`MigrationPlanner.log`)
of two same-seed runs is identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.sched.health import HostHealthTracker
from repro.sched.topology import Topology

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.world import World

__all__ = ["MigrationPlan", "MigrationPlanner", "PlannerConfig"]


@dataclass(frozen=True)
class PlannerConfig:
    """Scoring weights and admission limits."""

    #: concurrent migrations a host may participate in (source or dest)
    max_per_host: int = 1
    #: concurrent inter-rack migrations per rack uplink direction
    max_per_uplink: int = 2
    #: weight of the destination's free-memory fraction
    headroom_weight: float = 1.0
    #: bonus for staying inside the source's rack (no uplink crossing)
    locality_weight: float = 0.2
    #: bonus for leaving the source's fault domain (rack anti-affinity)
    spread_weight: float = 0.5
    #: score multiplier for a DEGRADED destination
    degraded_penalty: float = 0.5
    #: penalty per migration already in flight toward the destination's
    #: rack downlink (congestion avoidance)
    congestion_weight: float = 0.25
    #: hard floor on destination free memory after admission (bytes)
    min_headroom_bytes: float = 0.0

    def __post_init__(self):
        if self.max_per_host < 1 or self.max_per_uplink < 1:
            raise ValueError("admission limits must be at least 1")
        if not 0.0 <= self.degraded_penalty <= 1.0:
            raise ValueError("degraded_penalty must be in [0, 1]")


@dataclass
class MigrationPlan:
    """One planned migration: who moves where, and why."""

    seq: int
    vm: str
    src: str
    dst: str
    score: float
    #: bytes the plan expects to need at the destination
    demand_bytes: float
    #: planning time (simulation seconds)
    at: float
    #: times this plan was re-pointed at a new destination
    replans: int = 0

    def describe(self) -> str:
        return (f"plan#{self.seq} {self.vm}: {self.src}->{self.dst} "
                f"score={self.score:.3f} @{self.at:g}s")


@dataclass
class _Request:
    seq: int
    vm: str
    src: str


class MigrationPlanner:
    """Cluster-wide destination selection with admission control.

    ``dispatch`` is the control plane's launcher: it receives a
    :class:`MigrationPlan` and must start the migration (typically via a
    :class:`~repro.faults.MigrationSupervisor`), calling
    :meth:`on_plan_done` when the final attempt ends. Destinations are
    drawn from ``world.hosts`` (machines with a memory manager); hosts
    can be excluded with ``exclude_hosts`` (e.g. VMD-donor-only hosts).
    """

    def __init__(self, world: "World",
                 topology: Optional[Topology] = None,
                 health: Optional[HostHealthTracker] = None,
                 config: Optional[PlannerConfig] = None,
                 dispatch: Optional[Callable[[MigrationPlan], None]] = None,
                 exclude_hosts: tuple = ()):
        self.world = world
        self.topology = topology if topology is not None else world.topology
        self.health = health
        self.config = config or PlannerConfig()
        self.dispatch = dispatch
        self.exclude_hosts = set(exclude_hosts)
        self.queue: list[_Request] = []
        #: in-flight plans by VM name
        self.active: dict[str, MigrationPlan] = {}
        #: completed/failed plans in completion order
        self.completed: list[tuple[MigrationPlan, str]] = []
        #: every decision, in order — the determinism witness
        self.log: list[str] = []
        self._seq = 0
        #: per-host in-flight migration counts, maintained incrementally
        #: alongside ``active`` so admission checks are O(1) instead of
        #: scanning every in-flight plan per candidate host
        self._inflight: dict[str, int] = {}
        #: sorted candidate host names, rebuilt when hosts appear
        self._hosts_sorted: list[str] = []
        if health is not None:
            health.subscribe(self._on_health_change)

    @property
    def tracer(self):
        """The world's trace sink (read at event time: a tracer attached
        after planner construction is still honored)."""
        return self.world.tracer

    # -- intake --------------------------------------------------------------
    def request(self, vm_name: str, src_host: str) -> bool:
        """Queue a migration request from a watermark alert.

        Returns True (the request is queued or dispatched); duplicate
        requests for a VM already queued or in flight are dropped.
        """
        if vm_name in self.active or \
                any(r.vm == vm_name for r in self.queue):
            return True
        self._seq += 1
        req = _Request(self._seq, vm_name, src_host)
        self.queue.append(req)
        self.log.append(f"request#{req.seq} {vm_name} from {src_host} "
                        f"@{self.world.now:g}s")
        if self.tracer.enabled:
            self.tracer.instant(
                "planner", "request", cat="planner",
                args={"seq": req.seq, "vm": vm_name, "src": src_host})
        self.pump()
        return True

    # -- bookkeeping ---------------------------------------------------------
    def _candidates(self) -> list[str]:
        """Sorted host names (cached; the host set only ever grows)."""
        if len(self._hosts_sorted) != len(self.world.hosts):
            self._hosts_sorted = sorted(self.world.hosts)
        return self._hosts_sorted

    def _add_active(self, plan: MigrationPlan) -> None:
        self.active[plan.vm] = plan
        for host in (plan.src, plan.dst):
            self._inflight[host] = self._inflight.get(host, 0) + 1

    def _remove_active(self, vm: str) -> Optional[MigrationPlan]:
        plan = self.active.pop(vm, None)
        if plan is not None:
            for host in (plan.src, plan.dst):
                n = self._inflight.get(host, 0) - 1
                if n > 0:
                    self._inflight[host] = n
                else:
                    self._inflight.pop(host, None)
        return plan

    def _inflight_on(self, host: str) -> int:
        return self._inflight.get(host, 0)

    def _inflight_crossing(self, src: str, dst: str) -> int:
        """Inter-rack migrations sharing either uplink of this path."""
        topo = self.topology
        if topo is None or topo.same_rack(src, dst):
            return 0
        rs, rd = topo.rack_of(src), topo.rack_of(dst)
        n = 0
        for p in self.active.values():
            prs, prd = topo.rack_of(p.src), topo.rack_of(p.dst)
            if prs == prd:
                continue
            if prs == rs or prd == rd:
                n += 1
        return n

    def _demand_of(self, vm_name: str, src: str) -> float:
        """Bytes the VM will want at the destination (its reservation)."""
        host = self.world.hosts.get(src)
        if host is not None and host.memory.has_vm(vm_name):
            return host.memory.binding(vm_name).cgroup.reservation_bytes
        vm = self.world.vms.get(vm_name)
        return vm.memory_bytes if vm is not None else 0.0

    # -- scoring -------------------------------------------------------------
    def score_destination(self, vm_name: str, src: str, dst: str,
                          demand: Optional[float] = None) -> Optional[float]:
        """Deterministic destination score; None = ineligible.

        ``demand`` is the VM's memory demand if the caller already knows
        it — the admission loops compute it once per request instead of
        once per candidate host.
        """
        cfg = self.config
        if dst == src or dst in self.exclude_hosts:
            return None
        if self.health is not None and not self.health.placeable(dst):
            return None
        host = self.world.hosts[dst]
        usable = host.memory.usable_bytes()
        if usable <= 0:
            return None
        free = host.memory.free_bytes()
        if demand is None:
            demand = self._demand_of(vm_name, src)
        if free - demand < cfg.min_headroom_bytes:
            return None
        score = cfg.headroom_weight * max(0.0, free) / usable
        topo = self.topology
        if topo is not None and topo.rack_of(src) is not None \
                and topo.rack_of(dst) is not None:
            score += (cfg.locality_weight if topo.same_rack(src, dst)
                      else cfg.spread_weight)
        score -= cfg.congestion_weight * self._inflight_on(dst)
        if self.health is not None and not self.health.is_up(dst):
            score *= cfg.degraded_penalty  # DEGRADED (placeable, impaired)
        return score

    def _best_destination(self, req: _Request, collect: bool = False):
        """Best eligible destination for ``req`` (None = none).

        With ``collect`` (tracing), returns ``(best, scored)`` where
        ``scored`` lists every candidate that survived admission with
        its score — the planner-decision event's evidence.
        """
        cfg = self.config
        best: Optional[tuple[str, float]] = None
        scored: list[tuple[str, float]] = []
        demand = self._demand_of(req.vm, req.src)
        for dst in self._candidates():
            # Cheap admission pre-filters before the scoring work.
            if self._inflight_on(dst) >= cfg.max_per_host:
                continue
            if self._inflight_crossing(req.src, dst) >= cfg.max_per_uplink:
                continue
            score = self.score_destination(req.vm, req.src, dst,
                                           demand=demand)
            if score is None:
                continue
            if collect:
                scored.append((dst, score))
            if best is None or score > best[1]:
                best = (dst, score)
        if collect:
            return best, scored
        return best

    # -- the pump ------------------------------------------------------------
    def pump(self) -> int:
        """Admit every queued request that can run now (FIFO order).

        Returns the number of plans dispatched. Called from
        :meth:`request`, :meth:`on_plan_done`, and health transitions;
        safe to call any time.
        """
        dispatched = 0
        tr = self.tracer
        for req in list(self.queue):
            if self._inflight_on(req.src) >= self.config.max_per_host:
                if tr.enabled:
                    tr.instant("planner", "deferred", cat="planner",
                               args={"seq": req.seq, "vm": req.vm,
                                     "reason": "source-at-capacity"})
                continue
            scored: list[tuple[str, float]] = []
            if tr.enabled:
                best, scored = self._best_destination(req, collect=True)
            else:
                best = self._best_destination(req)
            if best is None:
                if tr.enabled:
                    tr.instant("planner", "deferred", cat="planner",
                               args={"seq": req.seq, "vm": req.vm,
                                     "reason": "no-destination"})
                continue
            dst, score = best
            plan = MigrationPlan(
                seq=req.seq, vm=req.vm, src=req.src, dst=dst, score=score,
                demand_bytes=self._demand_of(req.vm, req.src),
                at=self.world.now)
            self.queue.remove(req)
            self._add_active(plan)
            self.log.append(plan.describe())
            if tr.enabled:
                tr.instant(
                    "planner", "plan", cat="planner",
                    args={"seq": plan.seq, "vm": plan.vm, "src": plan.src,
                          "dst": plan.dst, "score": round(plan.score, 6),
                          "candidates": [
                              {"dst": d, "score": round(s, 6)}
                              for d, s in scored]})
            dispatched += 1
            if self.dispatch is not None:
                self.dispatch(plan)
        return dispatched

    # -- lifecycle callbacks --------------------------------------------------
    def on_plan_done(self, plan: MigrationPlan, outcome: str) -> None:
        """Release the plan's admission slots and re-pump the queue."""
        self._remove_active(plan.vm)
        self.completed.append((plan, outcome))
        self.log.append(f"done#{plan.seq} {plan.vm} -> {plan.dst}: "
                        f"{outcome} @{self.world.now:g}s")
        if self.tracer.enabled:
            self.tracer.instant(
                "planner", "done", cat="planner",
                args={"seq": plan.seq, "vm": plan.vm, "dst": plan.dst,
                      "outcome": outcome})
        self.pump()

    def replan(self, plan: MigrationPlan,
               exclude: frozenset = frozenset()) -> Optional[MigrationPlan]:
        """Point an active plan at a new destination (old one failing).

        Returns the updated plan, or None when no eligible destination
        exists (the caller should park or give up). The per-host slot on
        the abandoned destination is freed by dropping it from
        ``active`` before re-scoring.
        """
        current = self.active.get(plan.vm)
        if current is None:
            return None
        self._remove_active(plan.vm)  # free its slots while re-scoring
        best: Optional[tuple[str, float]] = None
        demand = self._demand_of(plan.vm, plan.src)
        for dst in self._candidates():
            if dst in exclude:
                continue
            if self._inflight_on(dst) >= self.config.max_per_host:
                continue
            if self._inflight_crossing(plan.src, dst) \
                    >= self.config.max_per_uplink:
                continue
            score = self.score_destination(plan.vm, plan.src, dst,
                                           demand=demand)
            if score is None:
                continue
            if best is None or score > best[1]:
                best = (dst, score)
        if best is None:
            self._add_active(current)  # keep the old slots
            self.log.append(f"replan#{plan.seq} {plan.vm}: no destination")
            if self.tracer.enabled:
                self.tracer.instant(
                    "planner", "replan", cat="planner",
                    args={"seq": plan.seq, "vm": plan.vm,
                          "outcome": "no-destination"})
            return None
        dst, score = best
        new = MigrationPlan(
            seq=plan.seq, vm=plan.vm, src=plan.src, dst=dst, score=score,
            demand_bytes=plan.demand_bytes, at=self.world.now,
            replans=plan.replans + 1)
        self._add_active(new)
        self.log.append(f"replan#{new.seq} {new.vm}: "
                        f"{plan.dst} -> {new.dst} @{self.world.now:g}s")
        if self.tracer.enabled:
            self.tracer.instant(
                "planner", "replan", cat="planner",
                args={"seq": new.seq, "vm": new.vm, "old_dst": plan.dst,
                      "dst": new.dst, "score": round(new.score, 6)})
        return new

    def _on_health_change(self, host: str, old, new) -> None:
        # capacity may have returned (UP) or appeared (a dead host's VMs
        # freed memory elsewhere) — either way, re-examine the queue
        self.pump()

    # -- initial placement ----------------------------------------------------
    def initial_placement(self, memory_demand_bytes: float,
                          exclude: frozenset = frozenset()) -> Optional[str]:
        """Pick the host for a *new* VM: healthy, most free memory, and
        spread across racks (fewest VMs in the candidate's rack first).

        Returns None when no placeable host has the demanded headroom.
        """
        topo = self.topology
        best: Optional[tuple[tuple, str]] = None
        for name in self._candidates():
            if name in self.exclude_hosts or name in exclude:
                continue
            if self.health is not None and not self.health.placeable(name):
                continue
            host = self.world.hosts[name]
            free = host.memory.free_bytes()
            if free < memory_demand_bytes:
                continue
            rack = topo.rack_of(name) if topo is not None else None
            rack_load = (sum(len(self.world.hosts[h].vms)
                             for h in topo.hosts_in(rack)
                             if h in self.world.hosts)
                         if rack is not None else 0)
            # lexicographic: emptiest rack, then most free, then name
            key = (rack_load, -free, name)
            if best is None or key < best[0]:
                best = (key, name)
        if best is None:
            return None
        self.log.append(f"place new vm ({memory_demand_bytes:g} B) "
                        f"-> {best[1]} @{self.world.now:g}s")
        if self.tracer.enabled:
            self.tracer.instant(
                "planner", "place", cat="planner",
                args={"demand_bytes": float(memory_demand_bytes),
                      "host": best[1]})
        return best[1]
