"""Migration recovery: supervised dispatch with retry and backoff.

A :class:`MigrationSupervisor` owns the lifecycle that a single
:class:`~repro.core.base.MigrationManager` cannot: it launches attempts
from a factory, listens for their terminal outcome, and re-dispatches
aborted attempts (the abort left the VM running at the source, so
retrying is always safe). Failed attempts — the VM itself was lost —
are terminal and propagate immediately.

Retry timing depends on what the supervisor knows about the destination:

* with a health tracker attached, an abort whose destination is not UP
  is **parked** — no retry fires until the tracker reports the host back
  up (and through its post-recovery cooldown), at which point parked
  attempts launch immediately. No blind probe ever hits a dead host.
* after ``replan_after_aborts`` aborted attempts, an optional ``replan``
  callback may supply a factory pointing at a *different* destination
  (wired to :meth:`~repro.sched.MigrationPlanner.replan` by the control
  plane), so a VM is not chained to a flapping host forever.
* with neither (the PR-1 baseline), exponential backoff from
  :class:`RetryPolicy` applies.

The supervisor also bridges the fault stream to the managers it runs:
host crashes are routed to :meth:`MigrationManager.on_host_crash` and
VMD donor crashes to :meth:`MigrationManager.on_vmd_crash`, which decide
abort vs fail from the migration's phase (see the decision table in
``core/base.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.core.base import MigrationManager, MigrationOutcome
from repro.faults.spec import FaultKind, FaultSpec
from repro.sim.kernel import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.world import World
    from repro.core.trigger import WatermarkTrigger

__all__ = ["MigrationSupervisor", "RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff for re-dispatching aborted migrations."""

    max_retries: int = 3
    backoff_s: float = 2.0
    backoff_factor: float = 2.0
    backoff_cap_s: float = 60.0

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_s <= 0 or self.backoff_factor < 1:
            raise ValueError("backoff must be positive and non-shrinking")

    def delay(self, attempt: int) -> float:
        """Backoff before re-dispatching after failed attempt ``attempt``
        (0-based)."""
        return min(self.backoff_s * self.backoff_factor ** attempt,
                   self.backoff_cap_s)


class MigrationSupervisor:
    """Dispatches migrations, retries aborts, reacts to faults.

    ``factory`` passed to :meth:`dispatch` must build a *fresh* manager
    each call (managers are single-use); the supervisor registers it
    with the tick engine and starts it. If the world has a fault
    injector attached, the supervisor subscribes automatically and
    forwards crash events to every in-flight manager. An optional
    :class:`~repro.core.trigger.WatermarkTrigger` is re-armed whenever
    an attempt ends without completing, so pressure-driven dispatch can
    re-select.
    """

    def __init__(self, world: "World",
                 policy: Optional[RetryPolicy] = None,
                 trigger: Optional["WatermarkTrigger"] = None,
                 health=None,
                 replan: Optional[Callable[[MigrationManager],
                                           Optional[Callable[
                                               [], MigrationManager]]]] = None,
                 replan_after_aborts: int = 2):
        self.world = world
        self.policy = policy or RetryPolicy()
        self.trigger = trigger
        #: health tracker (duck typed: ``is_up(host)``, ``subscribe(fn)``);
        #: None = health-blind backoff, the PR-1 behaviour
        self.health = health
        #: ``replan(mgr) -> factory | None`` — ask for a new destination
        self.replan = replan
        self.replan_after_aborts = replan_after_aborts
        #: terminal reports of every attempt, in completion order
        self.attempts = []
        #: retries waiting for their destination host to come back UP:
        #: host → list of (factory, next_attempt, final_event)
        self.parked: dict[str, list[tuple]] = {}
        self._active: list[MigrationManager] = []
        if world.faults is not None:
            world.faults.subscribe(self._on_fault)
        if health is not None:
            health.subscribe(self._on_health_change)

    def in_flight(self) -> list:
        """Reports of attempts still running (``outcome is None``) —
        live observers (the SLO monitor) attribute degradation windows
        to these before they land in :attr:`attempts`."""
        return [mgr.report for mgr in self._active]

    # -- dispatch -------------------------------------------------------------
    def dispatch(self, factory: Callable[[], MigrationManager]) -> Event:
        """Run ``factory()`` to completion, retrying aborts.

        Returns an event that fires with the *final* attempt's report
        (outcome COMPLETED, FAILED, or ABORTED once retries are
        exhausted). Earlier aborted attempts are re-marked RETRIED.
        """
        final = self.world.sim.event("supervised-migration")
        self._launch(factory, 0, final)
        return final

    def _launch(self, factory: Callable[[], MigrationManager],
                attempt: int, final: Event) -> None:
        mgr = factory()
        mgr.report.attempt = attempt
        engine = self.world.engine
        engine.add_participant(mgr, order=0)
        # A finished engine must leave the tick protocol: at cluster
        # scale the completed managers otherwise accumulate in the
        # participant list and every tick pays their no-op phases.
        mgr.done.add_callback(lambda _ev: engine.remove_participant(mgr))
        self._active.append(mgr)
        mgr.done.add_callback(
            lambda ev: self._on_done(mgr, ev.value, factory, attempt, final))
        mgr.start()

    def _on_done(self, mgr: MigrationManager, report,
                 factory: Callable[[], MigrationManager],
                 attempt: int, final: Event) -> None:
        self._active.remove(mgr)
        self.attempts.append(report)
        retriable = (report.outcome is MigrationOutcome.ABORTED
                     and attempt < self.policy.max_retries)
        if report.outcome is not MigrationOutcome.COMPLETED \
                and self.trigger is not None:
            self.trigger.rearm()
        if not retriable:
            final.succeed(report)
            return
        report.outcome = MigrationOutcome.RETRIED
        if self.replan is not None \
                and attempt + 1 >= self.replan_after_aborts:
            rerouted = self.replan(mgr)
            if rerouted is not None:
                # fresh destination — launch right away (it was chosen
                # healthy; no reason to back off against it)
                self._launch(rerouted, attempt + 1, final)
                return
        if self.health is not None and not self.health.is_up(mgr.dst.name):
            # destination known-dead (or cooling off): no blind probe —
            # park until the tracker reports it UP again
            self.parked.setdefault(mgr.dst.name, []).append(
                (factory, attempt + 1, final))
            return
        self.world.sim.call_in(self.policy.delay(attempt),
                               self._launch, factory, attempt + 1, final)

    def _on_health_change(self, host: str, old, new) -> None:
        if getattr(new, "name", None) != "UP":
            return
        for factory, attempt, final in self.parked.pop(host, []):
            self._launch(factory, attempt, final)

    # -- fault routing --------------------------------------------------------
    def _on_fault(self, spec: FaultSpec, phase: str) -> None:
        if phase != "inject":
            return
        if spec.kind is FaultKind.HOST_CRASH:
            for mgr in list(self._active):
                mgr.on_host_crash(spec.target)
        elif spec.kind is FaultKind.VMD_CRASH:
            for mgr in list(self._active):
                mgr.on_vmd_crash(spec.target)
        elif spec.kind in (FaultKind.RACK_CRASH, FaultKind.POD_CRASH):
            topo = getattr(self.world, "topology", None)
            if topo is None:
                hosts = []
            elif spec.kind is FaultKind.RACK_CRASH:
                hosts = topo.hosts_in(spec.target)
            else:
                hosts = topo.hosts_in_pod(spec.target)
            for host in hosts:
                for mgr in list(self._active):
                    mgr.on_host_crash(host)
                    mgr.on_vmd_crash(host)
