"""The fault injector: applies a schedule to a wired World.

Injection and reversion are plain simulator callbacks at the scheduled
times, so the fault timeline is part of the deterministic event order —
two runs with the same seed and schedule are tick-for-tick identical.

The injector only touches *physical* state (links, servers, devices, VM
liveness). Migration-level consequences — aborting a transfer whose
destination died, failing a VM caught in the split-state window — are the
recovery layer's job: supervisors and managers :meth:`subscribe` and
react to the ``(spec, phase)`` notifications.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.faults.log import FaultLog
from repro.faults.spec import FaultKind, FaultSchedule, FaultSpec
from repro.vm.vm import VmState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.world import World

__all__ = ["FaultInjector"]

#: subscriber phase strings
INJECT, REVERT = "inject", "revert"


class FaultInjector:
    """Schedules and applies every fault in ``schedule`` against ``world``.

    Construct after the topology is wired (hosts, SSDs, VMD) — targets
    are validated eagerly so a typo fails at setup, not mid-run. Usually
    created via :meth:`repro.cluster.World.attach_faults`.
    """

    def __init__(self, world: "World", schedule: FaultSchedule,
                 log: Optional[FaultLog] = None):
        self.world = world
        self.schedule = schedule
        self.log = log if log is not None else FaultLog()
        self._subscribers: list[Callable[[FaultSpec, str], None]] = []
        #: open async fault spans for duration faults, keyed by spec
        self._fault_spans: dict[int, int] = {}
        for spec in schedule.specs:
            self._validate(spec)
            world.sim.call_at(spec.at, self._apply, spec)
            if spec.duration is not None:
                world.sim.call_at(spec.at + spec.duration,
                                  self._revert, spec)

    # -- subscription ---------------------------------------------------------
    def subscribe(self, fn: Callable[[FaultSpec, str], None]) -> None:
        """Call ``fn(spec, phase)`` after each injection/reversion, with
        ``phase`` one of ``"inject"`` / ``"revert"``. Physical effects are
        already applied when subscribers run."""
        self._subscribers.append(fn)

    def _notify(self, spec: FaultSpec, phase: str) -> None:
        for fn in list(self._subscribers):
            fn(spec, phase)

    # -- validation -----------------------------------------------------------
    def _validate(self, spec: FaultSpec) -> None:
        k = spec.kind
        if k in (FaultKind.HOST_CRASH, FaultKind.NIC_DOWN,
                 FaultKind.NIC_DEGRADED):
            if not self.world.network.has_host(spec.target):
                raise ValueError(f"fault targets unknown host: {spec.target}")
        elif k is FaultKind.PARTITION:
            for host in self._partition_hosts(spec.target):
                if not self.world.network.has_host(host):
                    raise ValueError(
                        f"partition names unknown host: {host}")
        elif k is FaultKind.VMD_CRASH:
            if self.world.vmd is None:
                raise ValueError("VMD_CRASH fault but world has no VMD")
            self.world.vmd.server_on(spec.target)  # raises if absent
        elif k is FaultKind.SSD_DEGRADED:
            if spec.target not in self.world.ssds:
                raise ValueError(f"fault targets unknown SSD: {spec.target}")
        elif k is FaultKind.RACK_CRASH:
            topo = getattr(self.world, "topology", None)
            if topo is None:
                raise ValueError("RACK_CRASH fault but world has no topology")
            if spec.target not in topo.racks:
                raise ValueError(f"fault targets unknown rack: {spec.target}")
        elif k is FaultKind.POD_CRASH:
            topo = getattr(self.world, "topology", None)
            if topo is None:
                raise ValueError("POD_CRASH fault but world has no topology")
            if spec.target not in topo.pods:
                raise ValueError(f"fault targets unknown pod: {spec.target}")
        elif k is FaultKind.AZ_PARTITION:
            topo = getattr(self.world, "topology", None)
            if topo is None:
                raise ValueError(
                    "AZ_PARTITION fault but world has no topology")
            if spec.target not in topo.azs:
                raise ValueError(f"fault targets unknown az: {spec.target}")

    @staticmethod
    def _partition_hosts(target: str) -> list[str]:
        return [h for group in target.split("|")
                for h in group.split(",") if h]

    @staticmethod
    def _partition_groups(target: str) -> list[list[str]]:
        return [[h for h in group.split(",") if h]
                for group in target.split("|") if group]

    # -- injection ------------------------------------------------------------
    def _apply(self, spec: FaultSpec) -> None:
        now = self.world.sim.now
        detail = getattr(self, f"_inject_{spec.kind.name.lower()}")(spec)
        self.log.record(now, INJECT, spec.kind.value, spec.target,
                        detail or "")
        tracer = self.world.tracer
        if tracer.enabled:
            args = {"kind": spec.kind.value, "target": spec.target}
            if detail:
                args["detail"] = detail
            if spec.duration is not None:
                # duration fault: one async span covering the outage
                self._fault_spans[id(spec)] = tracer.async_begin(
                    "faults", spec.kind.value, cat="fault", args=args)
            else:
                tracer.instant("faults", spec.kind.value, cat="fault",
                               args=args)
        self._notify(spec, INJECT)
        self._sweep_dead_vms(now)

    def _revert(self, spec: FaultSpec) -> None:
        now = self.world.sim.now
        getattr(self, f"_revert_{spec.kind.name.lower()}")(spec)
        self.log.record(now, REVERT, spec.kind.value, spec.target)
        span = self._fault_spans.pop(id(spec), 0)
        if span:
            self.world.tracer.async_end(span)
        self._notify(spec, REVERT)
        self._sweep_dead_vms(now)

    def _sweep_dead_vms(self, now: float) -> None:
        """Open outage intervals for every VM that is now terminated
        (idempotent — managers may have killed VMs during _notify)."""
        for name in sorted(self.world.vms):
            if self.world.vms[name].state is VmState.TERMINATED:
                self.log.mark_vm_unavailable(name, now)

    # -- per-kind effects -----------------------------------------------------
    def _inject_host_crash(self, spec: FaultSpec) -> str:
        nic = self.world.network.nic(spec.target)
        nic.tx.degrade(0.0)
        nic.rx.degrade(0.0)
        killed = []
        for name in sorted(self.world.vms):
            vm = self.world.vms[name]
            if vm.host == spec.target and vm.state is not VmState.TERMINATED:
                vm.terminate()
                killed.append(name)
        return f"killed={','.join(killed)}" if killed else ""

    def _revert_host_crash(self, spec: FaultSpec) -> None:
        # The host reboots: its NIC returns; the VMs it ran do not.
        nic = self.world.network.nic(spec.target)
        nic.tx.restore()
        nic.rx.restore()

    def _inject_nic_down(self, spec: FaultSpec) -> str:
        nic = self.world.network.nic(spec.target)
        nic.tx.degrade(0.0)
        nic.rx.degrade(0.0)
        return ""

    def _revert_nic_down(self, spec: FaultSpec) -> None:
        nic = self.world.network.nic(spec.target)
        nic.tx.restore()
        nic.rx.restore()

    def _inject_nic_degraded(self, spec: FaultSpec) -> str:
        nic = self.world.network.nic(spec.target)
        nic.tx.degrade(spec.severity)
        nic.rx.degrade(spec.severity)
        return f"factor={spec.severity:g}"

    _revert_nic_degraded = _revert_nic_down

    def _inject_partition(self, spec: FaultSpec) -> str:
        self.world.network.set_partition(self._partition_groups(spec.target))
        return ""

    def _revert_partition(self, spec: FaultSpec) -> None:
        self.world.network.clear_partition()

    def _inject_vmd_crash(self, spec: FaultSpec) -> str:
        vmd = self.world.vmd
        server = vmd.server_on(spec.target)
        vmd.fail_server(server, lose_contents=spec.lose_contents)
        # A namespace whose only copy died has lost data: its VM cannot
        # make progress anywhere (its swap pages are gone).
        doomed = []
        for name in sorted(vmd.namespaces):
            ns = vmd.namespaces[name]
            vm = self.world.vms.get(name)
            if ns.data_lost and vm is not None \
                    and vm.state is not VmState.TERMINATED:
                vm.terminate()
                doomed.append(name)
        detail = f"lose_contents={spec.lose_contents}"
        if doomed:
            detail += f" data_lost_vms={','.join(doomed)}"
        return detail

    def _revert_vmd_crash(self, spec: FaultSpec) -> None:
        vmd = self.world.vmd
        vmd.recover_server(vmd.server_on(spec.target))

    def _crash_hosts(self, hosts: list[str], lose_contents: bool) \
            -> tuple[list[str], list[str]]:
        """Correlated host loss: NICs dark, VMs killed, VMD donors
        failed; VMs whose only VMD copy died with the domain are doomed.
        Returns (killed VM names, failed donor hosts)."""
        killed, donors = [], []
        for host in hosts:
            if self.world.network.has_host(host):
                nic = self.world.network.nic(host)
                nic.tx.degrade(0.0)
                nic.rx.degrade(0.0)
            for name in sorted(self.world.vms):
                vm = self.world.vms[name]
                if vm.host == host and vm.state is not VmState.TERMINATED:
                    vm.terminate()
                    killed.append(name)
        if self.world.vmd is not None:
            hostset = set(hosts)
            for server in self.world.vmd.servers:
                if server.host in hostset and server.alive:
                    self.world.vmd.fail_server(
                        server, lose_contents=lose_contents)
                    donors.append(server.host)
            self._doom_lost_namespaces(killed)
        return killed, donors

    def _restore_hosts(self, hosts: list[str]) -> None:
        """Power restored: NICs and donors return; the VMs do not."""
        for host in hosts:
            if self.world.network.has_host(host):
                nic = self.world.network.nic(host)
                nic.tx.restore()
                nic.rx.restore()
        if self.world.vmd is not None:
            hostset = set(hosts)
            for server in self.world.vmd.servers:
                if server.host in hostset and not server.alive:
                    self.world.vmd.recover_server(server)

    @staticmethod
    def _crash_detail(killed: list[str], donors: list[str]) -> str:
        parts = []
        if killed:
            parts.append(f"killed={','.join(killed)}")
        if donors:
            parts.append(f"donors_failed={','.join(donors)}")
        return " ".join(parts)

    def _inject_rack_crash(self, spec: FaultSpec) -> str:
        """The whole rack loses power: ToR uplink dark, every host's NIC
        dark, every VM on those hosts killed, every VMD donor failed
        (``lose_contents`` decides whether donated pages are destroyed).
        """
        rack = self.world.topology.racks[spec.target]
        rack.up.degrade(0.0)
        rack.down.degrade(0.0)
        killed, donors = self._crash_hosts(rack.hosts, spec.lose_contents)
        return self._crash_detail(killed, donors)

    def _revert_rack_crash(self, spec: FaultSpec) -> None:
        # Power/ToR restored: links, NICs, and donors return; VMs do not.
        rack = self.world.topology.racks[spec.target]
        rack.up.restore()
        rack.down.restore()
        self._restore_hosts(rack.hosts)

    def _inject_pod_crash(self, spec: FaultSpec) -> str:
        """The whole pod goes down (aggregation switch death, power-bus
        trip): the pod uplink and every member rack's ToR links go dark,
        and every host in every member rack suffers the RACK_CRASH
        treatment in rack order."""
        topo = self.world.topology
        pod = topo.pods[spec.target]
        pod.up.degrade(0.0)
        pod.down.degrade(0.0)
        killed, donors = [], []
        for rname in pod.racks:
            rack = topo.racks[rname]
            rack.up.degrade(0.0)
            rack.down.degrade(0.0)
            k, d = self._crash_hosts(rack.hosts, spec.lose_contents)
            killed.extend(k)
            donors.extend(d)
        return self._crash_detail(killed, donors)

    def _revert_pod_crash(self, spec: FaultSpec) -> None:
        topo = self.world.topology
        pod = topo.pods[spec.target]
        pod.up.restore()
        pod.down.restore()
        for rname in pod.racks:
            rack = topo.racks[rname]
            rack.up.restore()
            rack.down.restore()
            self._restore_hosts(rack.hosts)

    def _inject_az_partition(self, spec: FaultSpec) -> str:
        """The AZ splits off the fabric: its spine uplink goes dark and
        its hosts can no longer exchange bytes with the rest of the
        cluster (hosts inside the AZ still talk to each other). Nothing
        dies; flows stall until the split heals. Replaces any existing
        fabric partition, like the PARTITION kind."""
        topo = self.world.topology
        az = topo.azs[spec.target]
        az.up.degrade(0.0)
        az.down.degrade(0.0)
        hosts = [h for h in topo.hosts_in_az(spec.target)
                 if self.world.network.has_host(h)]
        self.world.network.set_partition([hosts])
        return f"isolated={len(hosts)}"

    def _revert_az_partition(self, spec: FaultSpec) -> None:
        az = self.world.topology.azs[spec.target]
        az.up.restore()
        az.down.restore()
        self.world.network.clear_partition()

    def _doom_lost_namespaces(self, already_dead: list[str]) -> None:
        """Kill VMs whose only VMD copy died with the rack (their swap
        pages are unrecoverable, so they cannot run anywhere)."""
        vmd = self.world.vmd
        for name in sorted(vmd.namespaces):
            if name in already_dead:
                continue
            ns = vmd.namespaces[name]
            vm = self.world.vms.get(name)
            if ns.data_lost and vm is not None \
                    and vm.state is not VmState.TERMINATED:
                vm.terminate()

    def _inject_ssd_degraded(self, spec: FaultSpec) -> str:
        self.world.ssds[spec.target].degrade(spec.severity)
        return f"factor={spec.severity:g}"

    def _revert_ssd_degraded(self, spec: FaultSpec) -> None:
        self.world.ssds[spec.target].restore()
