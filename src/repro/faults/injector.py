"""The fault injector: applies a schedule to a wired World.

Injection and reversion are plain simulator callbacks at the scheduled
times, so the fault timeline is part of the deterministic event order —
two runs with the same seed and schedule are tick-for-tick identical.

The injector only touches *physical* state (links, servers, devices, VM
liveness). Migration-level consequences — aborting a transfer whose
destination died, failing a VM caught in the split-state window — are the
recovery layer's job: supervisors and managers :meth:`subscribe` and
react to the ``(spec, phase)`` notifications.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.faults.log import FaultLog
from repro.faults.spec import FaultKind, FaultSchedule, FaultSpec
from repro.vm.vm import VmState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.world import World

__all__ = ["FaultInjector"]

#: subscriber phase strings
INJECT, REVERT = "inject", "revert"


class FaultInjector:
    """Schedules and applies every fault in ``schedule`` against ``world``.

    Construct after the topology is wired (hosts, SSDs, VMD) — targets
    are validated eagerly so a typo fails at setup, not mid-run. Usually
    created via :meth:`repro.cluster.World.attach_faults`.
    """

    def __init__(self, world: "World", schedule: FaultSchedule,
                 log: Optional[FaultLog] = None):
        self.world = world
        self.schedule = schedule
        self.log = log if log is not None else FaultLog()
        self._subscribers: list[Callable[[FaultSpec, str], None]] = []
        #: open async fault spans for duration faults, keyed by spec
        self._fault_spans: dict[int, int] = {}
        for spec in schedule.specs:
            self._validate(spec)
            world.sim.call_at(spec.at, self._apply, spec)
            if spec.duration is not None:
                world.sim.call_at(spec.at + spec.duration,
                                  self._revert, spec)

    # -- subscription ---------------------------------------------------------
    def subscribe(self, fn: Callable[[FaultSpec, str], None]) -> None:
        """Call ``fn(spec, phase)`` after each injection/reversion, with
        ``phase`` one of ``"inject"`` / ``"revert"``. Physical effects are
        already applied when subscribers run."""
        self._subscribers.append(fn)

    def _notify(self, spec: FaultSpec, phase: str) -> None:
        for fn in list(self._subscribers):
            fn(spec, phase)

    # -- validation -----------------------------------------------------------
    def _validate(self, spec: FaultSpec) -> None:
        k = spec.kind
        if k in (FaultKind.HOST_CRASH, FaultKind.NIC_DOWN,
                 FaultKind.NIC_DEGRADED):
            if not self.world.network.has_host(spec.target):
                raise ValueError(f"fault targets unknown host: {spec.target}")
        elif k is FaultKind.PARTITION:
            for host in self._partition_hosts(spec.target):
                if not self.world.network.has_host(host):
                    raise ValueError(
                        f"partition names unknown host: {host}")
        elif k is FaultKind.VMD_CRASH:
            if self.world.vmd is None:
                raise ValueError("VMD_CRASH fault but world has no VMD")
            self.world.vmd.server_on(spec.target)  # raises if absent
        elif k is FaultKind.SSD_DEGRADED:
            if spec.target not in self.world.ssds:
                raise ValueError(f"fault targets unknown SSD: {spec.target}")
        elif k is FaultKind.RACK_CRASH:
            topo = getattr(self.world, "topology", None)
            if topo is None:
                raise ValueError("RACK_CRASH fault but world has no topology")
            if spec.target not in topo.racks:
                raise ValueError(f"fault targets unknown rack: {spec.target}")

    @staticmethod
    def _partition_hosts(target: str) -> list[str]:
        return [h for group in target.split("|")
                for h in group.split(",") if h]

    @staticmethod
    def _partition_groups(target: str) -> list[list[str]]:
        return [[h for h in group.split(",") if h]
                for group in target.split("|") if group]

    # -- injection ------------------------------------------------------------
    def _apply(self, spec: FaultSpec) -> None:
        now = self.world.sim.now
        detail = getattr(self, f"_inject_{spec.kind.name.lower()}")(spec)
        self.log.record(now, INJECT, spec.kind.value, spec.target,
                        detail or "")
        tracer = self.world.tracer
        if tracer.enabled:
            args = {"kind": spec.kind.value, "target": spec.target}
            if detail:
                args["detail"] = detail
            if spec.duration is not None:
                # duration fault: one async span covering the outage
                self._fault_spans[id(spec)] = tracer.async_begin(
                    "faults", spec.kind.value, cat="fault", args=args)
            else:
                tracer.instant("faults", spec.kind.value, cat="fault",
                               args=args)
        self._notify(spec, INJECT)
        self._sweep_dead_vms(now)

    def _revert(self, spec: FaultSpec) -> None:
        now = self.world.sim.now
        getattr(self, f"_revert_{spec.kind.name.lower()}")(spec)
        self.log.record(now, REVERT, spec.kind.value, spec.target)
        span = self._fault_spans.pop(id(spec), 0)
        if span:
            self.world.tracer.async_end(span)
        self._notify(spec, REVERT)
        self._sweep_dead_vms(now)

    def _sweep_dead_vms(self, now: float) -> None:
        """Open outage intervals for every VM that is now terminated
        (idempotent — managers may have killed VMs during _notify)."""
        for name in sorted(self.world.vms):
            if self.world.vms[name].state is VmState.TERMINATED:
                self.log.mark_vm_unavailable(name, now)

    # -- per-kind effects -----------------------------------------------------
    def _inject_host_crash(self, spec: FaultSpec) -> str:
        nic = self.world.network.nic(spec.target)
        nic.tx.degrade(0.0)
        nic.rx.degrade(0.0)
        killed = []
        for name in sorted(self.world.vms):
            vm = self.world.vms[name]
            if vm.host == spec.target and vm.state is not VmState.TERMINATED:
                vm.terminate()
                killed.append(name)
        return f"killed={','.join(killed)}" if killed else ""

    def _revert_host_crash(self, spec: FaultSpec) -> None:
        # The host reboots: its NIC returns; the VMs it ran do not.
        nic = self.world.network.nic(spec.target)
        nic.tx.restore()
        nic.rx.restore()

    def _inject_nic_down(self, spec: FaultSpec) -> str:
        nic = self.world.network.nic(spec.target)
        nic.tx.degrade(0.0)
        nic.rx.degrade(0.0)
        return ""

    def _revert_nic_down(self, spec: FaultSpec) -> None:
        nic = self.world.network.nic(spec.target)
        nic.tx.restore()
        nic.rx.restore()

    def _inject_nic_degraded(self, spec: FaultSpec) -> str:
        nic = self.world.network.nic(spec.target)
        nic.tx.degrade(spec.severity)
        nic.rx.degrade(spec.severity)
        return f"factor={spec.severity:g}"

    _revert_nic_degraded = _revert_nic_down

    def _inject_partition(self, spec: FaultSpec) -> str:
        self.world.network.set_partition(self._partition_groups(spec.target))
        return ""

    def _revert_partition(self, spec: FaultSpec) -> None:
        self.world.network.clear_partition()

    def _inject_vmd_crash(self, spec: FaultSpec) -> str:
        vmd = self.world.vmd
        server = vmd.server_on(spec.target)
        vmd.fail_server(server, lose_contents=spec.lose_contents)
        # A namespace whose only copy died has lost data: its VM cannot
        # make progress anywhere (its swap pages are gone).
        doomed = []
        for name in sorted(vmd.namespaces):
            ns = vmd.namespaces[name]
            vm = self.world.vms.get(name)
            if ns.data_lost and vm is not None \
                    and vm.state is not VmState.TERMINATED:
                vm.terminate()
                doomed.append(name)
        detail = f"lose_contents={spec.lose_contents}"
        if doomed:
            detail += f" data_lost_vms={','.join(doomed)}"
        return detail

    def _revert_vmd_crash(self, spec: FaultSpec) -> None:
        vmd = self.world.vmd
        vmd.recover_server(vmd.server_on(spec.target))

    def _inject_rack_crash(self, spec: FaultSpec) -> str:
        """The whole rack loses power: ToR uplink dark, every host's NIC
        dark, every VM on those hosts killed, every VMD donor failed
        (``lose_contents`` decides whether donated pages are destroyed).
        """
        topo = self.world.topology
        rack = topo.racks[spec.target]
        rack.up.degrade(0.0)
        rack.down.degrade(0.0)
        killed, donors = [], []
        for host in rack.hosts:
            if self.world.network.has_host(host):
                nic = self.world.network.nic(host)
                nic.tx.degrade(0.0)
                nic.rx.degrade(0.0)
            for name in sorted(self.world.vms):
                vm = self.world.vms[name]
                if vm.host == host and vm.state is not VmState.TERMINATED:
                    vm.terminate()
                    killed.append(name)
        if self.world.vmd is not None:
            for server in self.world.vmd.servers:
                if server.host in rack.hosts and server.alive:
                    self.world.vmd.fail_server(
                        server, lose_contents=spec.lose_contents)
                    donors.append(server.host)
            self._doom_lost_namespaces(killed)
        parts = []
        if killed:
            parts.append(f"killed={','.join(killed)}")
        if donors:
            parts.append(f"donors_failed={','.join(donors)}")
        return " ".join(parts)

    def _revert_rack_crash(self, spec: FaultSpec) -> None:
        # Power/ToR restored: links, NICs, and donors return; VMs do not.
        topo = self.world.topology
        rack = topo.racks[spec.target]
        rack.up.restore()
        rack.down.restore()
        for host in rack.hosts:
            if self.world.network.has_host(host):
                nic = self.world.network.nic(host)
                nic.tx.restore()
                nic.rx.restore()
        if self.world.vmd is not None:
            for server in self.world.vmd.servers:
                if server.host in rack.hosts and not server.alive:
                    self.world.vmd.recover_server(server)

    def _doom_lost_namespaces(self, already_dead: list[str]) -> None:
        """Kill VMs whose only VMD copy died with the rack (their swap
        pages are unrecoverable, so they cannot run anywhere)."""
        vmd = self.world.vmd
        for name in sorted(vmd.namespaces):
            if name in already_dead:
                continue
            ns = vmd.namespaces[name]
            vm = self.world.vms.get(name)
            if ns.data_lost and vm is not None \
                    and vm.state is not VmState.TERMINATED:
                vm.terminate()

    def _inject_ssd_degraded(self, spec: FaultSpec) -> str:
        self.world.ssds[spec.target].degrade(spec.severity)
        return f"factor={spec.severity:g}"

    def _revert_ssd_degraded(self, spec: FaultSpec) -> None:
        self.world.ssds[spec.target].restore()
