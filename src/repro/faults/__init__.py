"""Deterministic fault injection and migration recovery.

The paper's premise is that migrations happen *because* something is
about to go wrong (memory pressure, deprovisioning); this package models
what happens when something actually does — hosts crash, NICs fail or
degrade, the fabric partitions, VMD donors die, swap devices throttle —
and whether each migration technique's recovery semantics preserve the
VM:

* :mod:`repro.faults.spec` — :class:`FaultSpec` / :class:`FaultSchedule`:
  timed and seeded-stochastic fault timelines (same seed → identical
  timeline);
* :mod:`repro.faults.injector` — :class:`FaultInjector`: applies and
  reverts the faults against a wired :class:`~repro.cluster.World`;
* :mod:`repro.faults.log` — :class:`FaultLog`: the fault/recovery event
  log with downtime attribution (MTTR, VM-unavailable seconds);
* :mod:`repro.faults.recovery` — :class:`RetryPolicy` /
  :class:`MigrationSupervisor`: abort/rollback with exponential-backoff
  retry, wired to the fault stream.
"""

from repro.faults.injector import FaultInjector
from repro.faults.log import FaultEvent, FaultLog
from repro.faults.recovery import MigrationSupervisor, RetryPolicy
from repro.faults.spec import FaultKind, FaultSchedule, FaultSpec

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultLog",
    "FaultSchedule",
    "FaultSpec",
    "MigrationSupervisor",
    "RetryPolicy",
]
