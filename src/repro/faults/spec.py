"""Fault schedules: what breaks, when, and for how long.

A schedule is an immutable, time-ordered list of :class:`FaultSpec`
entries. Schedules can be written by hand (timed faults for targeted
tests) or drawn from a seeded RNG (:meth:`FaultSchedule.random` — chaos
sweeps). Either way the resulting timeline is a pure value: replaying the
same schedule against the same world produces the identical execution.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

__all__ = ["FaultKind", "FaultSpec", "FaultSchedule"]


class FaultKind(enum.Enum):
    #: a host dies: NIC down, every VM on it is lost. ``duration`` models
    #: a reboot — the NIC comes back, the VMs do not.
    HOST_CRASH = "host-crash"
    #: a host's NIC goes fully dark (both directions), then recovers
    NIC_DOWN = "nic-down"
    #: a host's NIC runs at ``severity`` × nominal (flaky optics,
    #: auto-negotiation fallback)
    NIC_DEGRADED = "nic-degraded"
    #: the switch fabric splits into groups that cannot exchange bytes;
    #: ``target`` encodes the groups as ``"a,b|c"`` (unnamed hosts form
    #: one implicit extra group)
    PARTITION = "partition"
    #: a VMD donor host crashes; ``lose_contents`` decides whether the
    #: donated pages are merely unreachable or destroyed
    VMD_CRASH = "vmd-crash"
    #: an SSD swap device serves at ``severity`` × nominal bandwidth
    #: (thermal throttling, controller resets)
    SSD_DEGRADED = "ssd-degraded"
    #: correlated rack failure (ToR death, PDU trip): ``target`` names a
    #: rack in the world's topology; every host in it crashes at once —
    #: NICs dark, VMs lost, VMD donors failed — and the rack's uplink
    #: goes down. ``duration`` models power/ToR restoration: the links
    #: and NICs come back, the VMs do not.
    RACK_CRASH = "rack-crash"
    #: correlated pod failure (aggregation switch death, power-bus trip):
    #: ``target`` names a pod; every rack in it suffers a RACK_CRASH at
    #: once and the pod's uplink goes dark. Same restoration semantics
    #: as RACK_CRASH: links, NICs and donors return, VMs do not.
    POD_CRASH = "pod-crash"
    #: an availability zone splits off the fabric (spine failure,
    #: inter-facility fiber cut): ``target`` names an AZ; its uplink
    #: goes dark and its hosts are partitioned from everyone else.
    #: Nothing dies — flows stall until ``duration`` heals the split.
    AZ_PARTITION = "az-partition"


#: kinds whose ``severity`` field is meaningful (a capacity factor)
_DEGRADING = (FaultKind.NIC_DEGRADED, FaultKind.SSD_DEGRADED)


@dataclass(frozen=True)
class FaultSpec:
    """One fault: kind, target, injection time, and optional recovery.

    Parameters
    ----------
    kind:
        What breaks.
    target:
        Host name (HOST_CRASH, NIC_*, VMD_CRASH), SSD device name
        (SSD_DEGRADED), a ``"a,b|c"`` group encoding (PARTITION), or a
        topology fault-domain name (RACK_CRASH / POD_CRASH /
        AZ_PARTITION).
    at:
        Injection time (simulation seconds).
    duration:
        Seconds until the fault is reverted; ``None`` = permanent.
    severity:
        Remaining-capacity factor for the ``*_DEGRADED`` kinds.
    lose_contents:
        VMD_CRASH only: the donor's stored pages are destroyed rather
        than merely unreachable (power loss vs network partition).
    """

    kind: FaultKind
    target: str
    at: float
    duration: Optional[float] = None
    severity: float = 0.5
    lose_contents: bool = False

    def __post_init__(self):
        if self.at < 0:
            raise ValueError(f"fault time must be non-negative: {self.at}")
        if self.duration is not None and self.duration <= 0:
            raise ValueError(f"fault duration must be positive: "
                             f"{self.duration}")
        if self.kind in _DEGRADING and not 0.0 < self.severity <= 1.0:
            raise ValueError(
                f"severity (remaining-capacity factor) must be in (0, 1]: "
                f"{self.severity}")
        if not self.target:
            raise ValueError("fault target must be non-empty")

    @property
    def recovery_at(self) -> Optional[float]:
        if self.duration is None:
            return None
        return self.at + self.duration

    def describe(self) -> str:
        parts = [f"{self.kind.value} @{self.at:g}s target={self.target}"]
        if self.duration is not None:
            parts.append(f"for {self.duration:g}s")
        if self.kind in _DEGRADING:
            parts.append(f"factor={self.severity:g}")
        if self.kind is FaultKind.VMD_CRASH and self.lose_contents:
            parts.append("contents-lost")
        return " ".join(parts)


class FaultSchedule:
    """An ordered collection of faults to inject.

    Iteration yields specs sorted by ``(at, kind, target)`` so two
    schedules built from the same entries are indistinguishable — the
    injector's behaviour depends only on the *set* of faults.
    """

    def __init__(self, specs: Iterable[FaultSpec] = ()):
        self._specs: list[FaultSpec] = list(specs)

    def add(self, spec: FaultSpec) -> "FaultSchedule":
        """Append a fault (builder style; returns self)."""
        self._specs.append(spec)
        return self

    @property
    def specs(self) -> tuple[FaultSpec, ...]:
        return tuple(sorted(self._specs,
                            key=lambda s: (s.at, s.kind.value, s.target)))

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self._specs)

    def describe(self) -> list[str]:
        """Stable human-readable timeline (used by determinism checks)."""
        return [s.describe() for s in self.specs]

    @classmethod
    def random(cls, rng: np.random.Generator, horizon_s: float, *,
               hosts: Sequence[str] = (),
               vmd_hosts: Sequence[str] = (),
               ssds: Sequence[str] = (),
               mean_interval_s: float = 60.0,
               mean_duration_s: float = 10.0,
               lose_contents: bool = True,
               allow_host_crash: bool = False) -> "FaultSchedule":
        """Draw a stochastic fault timeline from a seeded generator.

        Inter-arrival times are exponential with ``mean_interval_s``;
        each event picks a kind uniformly among those with eligible
        targets, a target uniformly, and an exponential duration. Host
        crashes are opt-in (they are usually terminal for the VMs
        involved, which drowns out the recoverable-fault statistics).
        The same generator state always yields the same schedule.
        """
        if horizon_s <= 0:
            raise ValueError("horizon must be positive")
        menu: list[FaultKind] = []
        if hosts:
            menu += [FaultKind.NIC_DOWN, FaultKind.NIC_DEGRADED]
            if allow_host_crash:
                menu.append(FaultKind.HOST_CRASH)
        if vmd_hosts:
            menu.append(FaultKind.VMD_CRASH)
        if ssds:
            menu.append(FaultKind.SSD_DEGRADED)
        if not menu:
            raise ValueError("no eligible fault targets supplied")
        schedule = cls()
        t = float(rng.exponential(mean_interval_s))
        while t < horizon_s:
            kind = menu[int(rng.integers(len(menu)))]
            if kind is FaultKind.VMD_CRASH:
                target = vmd_hosts[int(rng.integers(len(vmd_hosts)))]
            elif kind is FaultKind.SSD_DEGRADED:
                target = ssds[int(rng.integers(len(ssds)))]
            else:
                target = hosts[int(rng.integers(len(hosts)))]
            duration = float(rng.exponential(mean_duration_s)) + 1e-3
            severity = float(rng.uniform(0.05, 0.8))
            schedule.add(FaultSpec(
                kind=kind, target=target, at=round(t, 6),
                duration=round(duration, 6), severity=round(severity, 6),
                lose_contents=(lose_contents
                               if kind is FaultKind.VMD_CRASH else False)))
            t += float(rng.exponential(mean_interval_s))
        return schedule
