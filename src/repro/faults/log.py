"""Fault/recovery event log with downtime attribution.

Every injection, reversion, and VM-availability transition is appended to
one time-ordered list, which the metrics layer exports alongside the
usual series (CSV/JSON). Two summary statistics answer the questions the
survivability matrix asks:

* :meth:`FaultLog.mttr` — mean time to repair over the faults that were
  actually reverted;
* :meth:`FaultLog.vm_unavailable_seconds` — total VM-seconds of
  unavailability attributed to faults (a VM killed by a fault and never
  restored accrues until the observation horizon).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["FaultEvent", "FaultLog"]


@dataclass(frozen=True)
class FaultEvent:
    """One entry in the fault/recovery timeline."""

    t: float
    #: ``inject`` / ``revert`` for faults; ``vm-lost`` / ``vm-restored``
    #: for availability transitions
    action: str
    kind: str
    target: str
    detail: str = ""

    def describe(self) -> str:
        s = f"t={self.t:g} {self.action} {self.kind} {self.target}"
        return f"{s} [{self.detail}]" if self.detail else s


class FaultLog:
    """Append-only fault timeline plus open/closed interval tracking."""

    def __init__(self):
        self.events: list[FaultEvent] = []
        #: (kind, target) → injection time of the currently open fault
        self._open_faults: dict[tuple[str, str], float] = {}
        #: closed repair intervals: (kind, target, start, end)
        self.repairs: list[tuple[str, str, float, float]] = []
        #: vm name → time it became unavailable (still open)
        self._open_outages: dict[str, float] = {}
        #: closed outages: (vm, start, end)
        self.outages: list[tuple[str, float, float]] = []

    # -- fault intervals -----------------------------------------------------
    def record(self, t: float, action: str, kind: str, target: str,
               detail: str = "") -> None:
        self.events.append(FaultEvent(t, action, kind, target, detail))
        key = (kind, target)
        if action == "inject":
            self._open_faults.setdefault(key, t)
        elif action == "revert":
            start = self._open_faults.pop(key, None)
            if start is not None:
                self.repairs.append((kind, target, start, t))

    # -- VM availability -----------------------------------------------------
    def mark_vm_unavailable(self, vm: str, t: float,
                            detail: str = "") -> None:
        """Open an outage interval for ``vm`` (idempotent while open)."""
        if vm in self._open_outages:
            return
        self._open_outages[vm] = t
        self.events.append(FaultEvent(t, "vm-lost", "vm", vm, detail))

    def mark_vm_available(self, vm: str, t: float, detail: str = "") -> None:
        """Close ``vm``'s outage interval (no-op if none is open)."""
        start = self._open_outages.pop(vm, None)
        if start is None:
            return
        self.outages.append((vm, start, t))
        self.events.append(FaultEvent(t, "vm-restored", "vm", vm, detail))

    # -- summary statistics --------------------------------------------------
    def mttr(self) -> Optional[float]:
        """Mean time-to-repair over reverted faults (None if none)."""
        if not self.repairs:
            return None
        return sum(end - start
                   for _, _, start, end in self.repairs) / len(self.repairs)

    def vm_unavailable_seconds(self, until: float) -> float:
        """Total VM-seconds unavailable, open outages truncated at
        ``until``."""
        closed = sum(end - start for _, start, end in self.outages)
        still_open = sum(max(0.0, until - start)
                         for start in self._open_outages.values())
        return closed + still_open

    def unavailable_vms(self) -> list[str]:
        """VMs currently down, sorted for determinism."""
        return sorted(self._open_outages)

    # -- export --------------------------------------------------------------
    def to_rows(self) -> list[tuple]:
        """``(t, action, kind, target, detail)`` rows, header excluded."""
        return [(e.t, e.action, e.kind, e.target, e.detail)
                for e in self.events]

    def describe(self) -> list[str]:
        """Stable one-line-per-event rendering (determinism checks
        compare two runs' lists for equality)."""
        return [e.describe() for e in self.events]
