"""repro.fleet: a nova-style scheduler service over the migration sim.

The fleet layer closes the loop the single-migration stack leaves
open: *where VMs come from*. A seeded demand generator produces tenant
churn (:mod:`~repro.fleet.demand`); a host-manager view snapshots the
cluster sharing the planner's reservation ledger
(:mod:`~repro.fleet.hostview`); a composable filter/weigher pipeline
picks boot destinations (:mod:`~repro.fleet.pipeline`); the scheduler
service owns boots, retries, departures, decommission-drain, and crash
reactions (:mod:`~repro.fleet.service`); and a rebalancer sheds
overload with greedy moves or destination swaps
(:mod:`~repro.fleet.swap`).
"""

from repro.fleet.demand import DemandConfig, DemandGenerator, VmSpec
from repro.fleet.hostview import FleetHostView, HostState
from repro.fleet.pipeline import (
    AntiAffinityFilter, AvailabilityFilter, CongestionWeigher,
    DomainSpreadWeigher, Filter, HeadroomFilter, HeadroomWeigher,
    HealthFilter, PlacementDecision, PlacementPipeline,
    RackSpreadWeigher, WatermarkFilter, Weigher,
)
from repro.fleet.service import FleetScheduler, FleetServiceConfig
from repro.fleet.swap import RebalanceConfig, SwapRebalancer

__all__ = [
    "AntiAffinityFilter", "AvailabilityFilter", "CongestionWeigher",
    "DemandConfig", "DemandGenerator", "DomainSpreadWeigher", "Filter",
    "FleetHostView",
    "FleetScheduler", "FleetServiceConfig", "HeadroomFilter",
    "HeadroomWeigher", "HealthFilter", "HostState", "PlacementDecision",
    "PlacementPipeline", "RackSpreadWeigher", "RebalanceConfig",
    "SwapRebalancer", "VmSpec", "WatermarkFilter", "Weigher",
]
