"""Filter/weigher placement, in the shape of Nova's FilterScheduler.

Placement is two honest stages. *Filters* are predicates — a host
either can or cannot take the VM — and every filter sees every host,
so the surviving set (and the per-filter rejection counts) is the pure
intersection of the filters, independent of the order they are listed
in. *Weighers* rank the survivors: each scores every candidate, scores
are combined as a multiplier-weighted sum, and the best host wins with
a lexicographic tie-break so placement is deterministic.

The pipeline itself is policy-free composition: scenarios build their
own stack (health, headroom-with-reservations, watermark,
anti-affinity, rack spread, congestion) and the
:class:`~repro.fleet.service.FleetScheduler` just calls
:meth:`PlacementPipeline.select`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fleet.demand import VmSpec
    from repro.fleet.hostview import HostState

__all__ = [
    "AntiAffinityFilter", "AvailabilityFilter", "CongestionWeigher",
    "DomainSpreadWeigher", "Filter", "HeadroomFilter", "HeadroomWeigher",
    "HealthFilter", "PlacementDecision", "PlacementPipeline",
    "RackSpreadWeigher", "WatermarkFilter", "Weigher",
]


class Filter:
    """A pass/fail predicate over one host for one VM spec."""

    #: short identifier used in rejection counts and logs
    name = "filter"

    def passes(self, state: "HostState", spec: "VmSpec") -> bool:
        raise NotImplementedError


class Weigher:
    """Scores one surviving host for one VM spec (higher = better).

    ``multiplier`` scales this weigher's contribution to the combined
    score (Nova's ``weight_multiplier`` knob); negative multipliers
    invert a preference.
    """

    name = "weigher"

    def __init__(self, multiplier: float = 1.0):
        self.multiplier = float(multiplier)

    def weigh(self, state: "HostState", spec: "VmSpec") -> float:
        raise NotImplementedError


# -- concrete filters ---------------------------------------------------------
class AvailabilityFilter(Filter):
    """Rejects hosts that are draining or already retired."""

    name = "available"

    def passes(self, state, spec):
        return not state.draining and not state.retired


class HealthFilter(Filter):
    """Rejects hosts whose health state is not in the allowed set."""

    name = "health"

    def __init__(self, allowed: tuple = ("UP",)):
        self.allowed = frozenset(allowed)

    def passes(self, state, spec):
        return state.health in self.allowed


class HeadroomFilter(Filter):
    """Requires ``min_headroom_bytes`` of slack *after* the boot, with
    the planner's reservation ledger already charged — the satellite
    truth: a host about to receive two migrations has less room than
    its resident bytes suggest."""

    name = "headroom"

    def __init__(self, min_headroom_bytes: float = 0.0):
        self.min_headroom_bytes = float(min_headroom_bytes)

    def passes(self, state, spec):
        return state.free_bytes - spec.memory_bytes \
            >= self.min_headroom_bytes


class WatermarkFilter(Filter):
    """Caps projected usage (resident + reserved + this boot) at a
    fraction of usable memory, keeping admission below the trigger's
    alert watermark instead of booting straight into a rebalance."""

    name = "watermark"

    def __init__(self, fraction: float = 0.9):
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"watermark fraction must be in (0, 1], "
                             f"got {fraction}")
        self.fraction = float(fraction)

    def passes(self, state, spec):
        if state.usable_bytes <= 0:
            return False
        projected = (state.resident_bytes + state.reserved_bytes
                     + spec.memory_bytes)
        return projected <= self.fraction * state.usable_bytes


class AntiAffinityFilter(Filter):
    """At most ``max_per_host`` VMs of the same tenant per host, so one
    host failure cannot take out a tenant's whole footprint."""

    name = "anti-affinity"

    def __init__(self, max_per_host: int = 2):
        if max_per_host < 1:
            raise ValueError("max_per_host must be >= 1")
        self.max_per_host = int(max_per_host)

    def passes(self, state, spec):
        return state.tenants.get(spec.tenant, 0) < self.max_per_host


# -- concrete weighers --------------------------------------------------------
class HeadroomWeigher(Weigher):
    """Prefers the host with the most post-boot slack, normalized by
    usable memory so big and small hosts compete fairly."""

    name = "headroom"

    def weigh(self, state, spec):
        if state.usable_bytes <= 0:
            return 0.0
        return (state.free_bytes - spec.memory_bytes) / state.usable_bytes


class RackSpreadWeigher(Weigher):
    """Prefers emptier racks (fewer live VMs rack-wide), spreading the
    fleet across failure domains."""

    name = "rack-spread"

    def weigh(self, state, spec):
        return -float(state.rack_load)


class DomainSpreadWeigher(Weigher):
    """Prefers hosts in the emptiest *nested* fault domains: AZ load
    dominates, then pod load, then rack load — so on a multi-tier
    topology the fleet spreads across the deepest distinct domain
    first (one AZ or pod event cannot take out a tenant's footprint),
    and on a flat topology it degrades to exactly the rack spread.

    ``tier_falloff`` discounts each inner tier: a rack imbalance only
    outweighs an AZ imbalance ``tier_falloff²`` times as large.
    """

    name = "domain-spread"

    def __init__(self, multiplier: float = 1.0,
                 tier_falloff: float = 0.125):
        super().__init__(multiplier)
        if not 0.0 < tier_falloff <= 1.0:
            raise ValueError(f"tier_falloff must be in (0, 1], "
                             f"got {tier_falloff}")
        self.tier_falloff = float(tier_falloff)

    def weigh(self, state, spec):
        k = self.tier_falloff
        score = -float(state.rack_load)
        if state.pod is not None:
            score = -float(state.pod_load) + k * score
        if state.az is not None:
            score = -float(state.az_load) + k * score
        return score


class CongestionWeigher(Weigher):
    """Penalizes hosts already involved in migrations — a boot landing
    on a migration destination contends for the same uplinks."""

    name = "congestion"

    def weigh(self, state, spec):
        return -float(state.inflight)


# -- the pipeline -------------------------------------------------------------
@dataclass
class PlacementDecision:
    """The outcome of one :meth:`PlacementPipeline.select` call."""

    #: chosen host, or None when no host passed every filter
    host: Optional[str]
    #: "ok", or "no-valid-host" on rejection
    reason: str
    #: hosts each filter rejected (every filter sees every host, so
    #: these counts are independent of filter order)
    rejected: dict = field(default_factory=dict)
    #: combined score per surviving host
    scores: dict = field(default_factory=dict)


class PlacementPipeline:
    """Composes filters and weighers into one placement decision."""

    def __init__(self, filters: list, weighers: list):
        self.filters = list(filters)
        self.weighers = list(weighers)

    def select(self, states: list, spec) -> PlacementDecision:
        """Pick a host for ``spec`` from candidate ``states``.

        Deliberately *not* short-circuited: every filter judges every
        host, so rejection counts and the surviving set are the same
        for any ordering of ``self.filters``.
        """
        rejected = {f.name: 0 for f in self.filters}
        survivors = []
        for state in states:
            ok = True
            for f in self.filters:
                if not f.passes(state, spec):
                    rejected[f.name] += 1
                    ok = False
            if ok:
                survivors.append(state)
        if not survivors:
            return PlacementDecision(host=None, reason="no-valid-host",
                                     rejected=rejected)
        scores = {
            s.name: sum(w.multiplier * w.weigh(s, spec)
                        for w in self.weighers)
            for s in survivors
        }
        # max score; ties broken by host name for determinism
        best = min(scores, key=lambda h: (-scores[h], h))
        return PlacementDecision(host=best, reason="ok",
                                 rejected=rejected, scores=scores)
