"""Rebalancing strategies: greedy shedding vs destination swaps.

A churning fleet drifts out of balance — departures leave holes,
bursts pile boots onto whichever hosts had headroom that second. The
:class:`SwapRebalancer` periodically walks hosts above a high
watermark and sheds load, with two selectable strategies:

* ``greedy`` — the classic largest-first baseline: move the biggest
  resident VM to the freest host, repeat until below target. Simple,
  but it pays the biggest VMs' bytes every time and stalls when no
  destination can take them whole.
* ``swap`` — destination-swap rebalancing after Avin et al.: shed the
  *cheapest adequate* VM (the smallest one that covers the excess),
  and when no destination can admit it, trade places with a smaller
  VM on an otherwise-full destination — each half of the pair is
  admitted via :meth:`~repro.sched.planner.MigrationPlanner.direct`
  with ``credit_bytes`` for the bytes its counterpart frees. Swaps
  unlock destinations greedy gives up on, while cheapest-adequate
  selection moves strictly fewer bytes per shed; intra-tenant partners
  are preferred so a swap tends to stay within one tenant's footprint.

Both strategies admit through the planner, so rebalancing respects the
same concurrency caps, health gates, and reservation ledger as
watermark-triggered migrations and boots. A swap makes each host both
a source and a destination at once — configure the planner with
``max_per_host >= 2`` when enabling the swap strategy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.sim.periodic import PeriodicTask
from repro.vm.vm import VmState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.world import World
    from repro.fleet.hostview import FleetHostView, HostState
    from repro.sched.planner import MigrationPlanner

__all__ = ["RebalanceConfig", "SwapRebalancer"]

STRATEGIES = ("greedy", "swap")


@dataclass(frozen=True)
class RebalanceConfig:
    """When to rebalance and how hard to push."""

    strategy: str = "swap"
    #: how often the rebalancer scans the cluster
    interval_s: float = 2.0
    #: hosts above this projected-usage fraction shed load
    high_watermark: float = 0.85
    #: shedding stops once projected usage reaches this fraction
    target_watermark: float = 0.75
    #: migration admissions per round (swaps count both halves)
    max_moves_per_round: int = 4
    #: permit swap partners from a different tenant
    allow_inter_tenant: bool = True

    def __post_init__(self):
        if self.strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy: {self.strategy!r} "
                             f"(one of {STRATEGIES})")
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if not 0.0 < self.target_watermark < self.high_watermark <= 1.0:
            raise ValueError("need 0 < target < high <= 1")
        if self.max_moves_per_round < 1:
            raise ValueError("max_moves_per_round must be >= 1")


class SwapRebalancer:
    """Periodic load shedding over a :class:`FleetHostView` snapshot."""

    def __init__(self, world: "World", planner: "MigrationPlanner",
                 view: "FleetHostView",
                 config: Optional[RebalanceConfig] = None):
        self.world = world
        self.planner = planner
        self.view = view
        self.config = config or RebalanceConfig()
        self.tracer = world.tracer
        self.log: list[str] = []
        self.counters = {"rounds": 0, "moves": 0, "swaps": 0,
                         "overloaded_seen": 0}
        self._task: Optional[PeriodicTask] = None

    def start(self) -> None:
        """Begin periodic rounds (idempotent)."""
        if self._task is None:
            self._task = PeriodicTask(self.world.sim,
                                      self.config.interval_s, self._round)

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None

    # -- one round ------------------------------------------------------------
    def _round(self, now: float) -> None:
        cfg = self.config
        states = self.view.refresh()
        overloaded = sorted(
            (s for s in states.values()
             if not s.draining and not s.retired
             and s.usage_fraction > cfg.high_watermark),
            key=lambda s: (-s.usage_fraction, s.name))
        self.counters["rounds"] += 1
        self.counters["overloaded_seen"] += len(overloaded)
        if not overloaded:
            return
        moves = 0
        for state in overloaded:
            if moves >= cfg.max_moves_per_round:
                break
            if cfg.strategy == "greedy":
                moves += self._shed_greedy(state, states,
                                           cfg.max_moves_per_round - moves)
            else:
                moves += self._shed_swap(state, states,
                                         cfg.max_moves_per_round - moves)
        if self.tracer.enabled:
            self.tracer.instant(
                "fleet", "rebalance", cat="fleet",
                args={"strategy": cfg.strategy,
                      "overloaded": [s.name for s in overloaded],
                      "moves": moves})

    # -- shared helpers -------------------------------------------------------
    def _excess_bytes(self, state: "HostState") -> float:
        """Bytes above the *target* watermark (what a shed must cover)."""
        return (state.resident_bytes + state.reserved_bytes
                - self.config.target_watermark * state.usable_bytes)

    def _movable_vms(self, host: str) -> list[tuple[str, float]]:
        """``(vm, resident_bytes)`` for VMs the planner may move now,
        name-sorted for determinism."""
        h = self.world.hosts[host]
        out = []
        for name in sorted(h.vms):
            vm = h.vms[name]
            if vm.state is VmState.TERMINATED or vm.migrating:
                continue
            if name in self.planner.active \
                    or self.planner.in_move_cooldown(name):
                continue
            size = h.memory.binding(name).pages.resident_bytes()
            if size > 0:
                out.append((name, float(size)))
        return out

    def _destinations(self, states: dict, exclude: str) -> list["HostState"]:
        """Candidate destinations, freest first (ties by name)."""
        return sorted(
            (s for s in states.values()
             if s.name != exclude and not s.draining and not s.retired
             and s.health == "UP"),
            key=lambda s: (-s.free_bytes, s.name))

    def _record_move(self, plan, kind: str) -> None:
        self.counters["moves"] += 1
        self.log.append(f"{kind} {plan.vm}: {plan.src}->{plan.dst} "
                        f"@{self.world.now:g}s")

    # -- greedy: largest-first direct moves -----------------------------------
    def _shed_greedy(self, state: "HostState", states: dict,
                     budget: int) -> int:
        excess = self._excess_bytes(state)
        if excess <= 0:
            return 0
        moves = 0
        for name, size in sorted(self._movable_vms(state.name),
                                 key=lambda t: (-t[1], t[0])):
            if excess <= 0 or moves >= budget:
                break
            for dst in self._destinations(states, exclude=state.name):
                plan = self.planner.direct(name, state.name, dst.name)
                if plan is not None:
                    self._record_move(plan, "move")
                    excess -= size
                    moves += 1
                    break
        return moves

    # -- swap-aware: cheapest-adequate moves + destination swaps --------------
    def _pick_cheapest_adequate(self, movable: list,
                                excess: float) -> Optional[tuple]:
        """The smallest VM that covers the excess alone; when none is
        big enough, the largest one (chip away)."""
        if not movable:
            return None
        adequate = [t for t in movable if t[1] >= excess]
        if adequate:
            return min(adequate, key=lambda t: (t[1], t[0]))
        return max(movable, key=lambda t: (t[1], t[0]))

    def _shed_swap(self, state: "HostState", states: dict,
                   budget: int) -> int:
        excess = self._excess_bytes(state)
        if excess <= 0:
            return 0
        moves = 0
        moved_vms: set = set()
        while excess > 0 and moves < budget:
            movable = [t for t in self._movable_vms(state.name)
                       if t[0] not in moved_vms]
            pick = self._pick_cheapest_adequate(movable, excess)
            if pick is None:
                break
            name, size = pick
            moved_vms.add(name)
            plan = None
            for dst in self._destinations(states, exclude=state.name):
                plan = self.planner.direct(name, state.name, dst.name)
                if plan is not None:
                    self._record_move(plan, "move")
                    excess -= size
                    moves += 1
                    break
            if plan is not None:
                continue
            # no destination can take it whole: trade places with a
            # smaller VM on the fullest-but-viable destination
            n = self._try_swap(state, states, name, size)
            if n:
                excess -= size  # partner arrives, but the big VM left
                moves += n
        return moves

    def _try_swap(self, state: "HostState", states: dict,
                  name: str, size: float) -> int:
        """Destination swap: ``name`` (size ``size``) trades places with
        a smaller VM on another host. Returns admitted plan count
        (2 = full swap, 1 = the outbound half only, 0 = nothing)."""
        tenant = self.view.tenant_of(name)
        for dst in self._destinations(states, exclude=state.name):
            partners = [(p, psize)
                        for p, psize in self._movable_vms(dst.name)
                        if psize < size]
            if not self.config.allow_inter_tenant:
                partners = [(p, s) for p, s in partners
                            if self.view.tenant_of(p) == tenant]
            else:
                # prefer intra-tenant partners, then smallest first
                partners.sort(key=lambda t: (
                    self.view.tenant_of(t[0]) != tenant, t[1], t[0]))
            for partner, psize in partners:
                # outbound half first: if the return half fails, the
                # overloaded host still shed its VM (a plain move)
                plan_out = self.planner.direct(
                    name, state.name, dst.name, credit_bytes=psize)
                if plan_out is None:
                    break  # this destination cannot admit even w/credit
                self._record_move(plan_out, "swap-out")
                plan_back = self.planner.direct(
                    partner, dst.name, state.name, credit_bytes=size)
                if plan_back is None:
                    return 1
                self._record_move(plan_back, "swap-back")
                self.counters["swaps"] += 1
                if self.tracer.enabled:
                    self.tracer.instant(
                        "fleet", "swap", cat="fleet",
                        args={"vm": name, "partner": partner,
                              "host": state.name, "dst": dst.name,
                              "vm_bytes": size, "partner_bytes": psize})
                return 2
        return 0
