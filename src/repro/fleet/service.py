"""The fleet scheduler service: boots, retries, departures, drains.

:class:`FleetScheduler` is the nova-conductor analogue for the sim. It
consumes a :class:`~repro.fleet.demand.VmSpec` stream and owns the full
VM lifecycle against a wired :class:`~repro.cluster.World`:

* **boot** — :meth:`submit` runs the filter/weigher pipeline over a
  fresh host-view snapshot, *reserves* the chosen host's memory in the
  planner's boot ledger (so migrations admitted during the boot delay
  see the claim — the shared-headroom satellite), and completes the
  boot after ``boot_delay_s``;
* **retry/reject** — a spec with no valid host backs off exponentially
  and re-enters the pipeline, up to ``max_boot_attempts``; after that
  it lands on the rejected list (the scenario's overload signal);
* **depart** — each booted VM schedules its own departure at
  boot-time + lifetime: terminate, free memory, unregister from the
  host, retire the VMD namespace, and cancel any queued migration —
  sustained churn leaves no dead tick participants behind;
* **decommission-drain** — :meth:`decommission` marks a host draining
  (no new placements, planner stops choosing it) and evacuates its
  residents through the planner with the move cooldown bypassed,
  re-checking periodically until the host is empty, then retires it;
* **faults** — subscribed to the injector: a host (or rack) crash
  during a drain — or any other time — fails the pending boots
  targeting the dead hosts back into the retry queue instead of
  booting VMs onto a corpse;
* **clone boots** — with a :class:`~repro.clone.CloneManager` attached,
  a spec whose tenant already runs a geometry-matching VM boots via
  :meth:`boot_via_clone` instead of the full-copy ``boot_fn``: the
  placement pipeline and boot ledger work exactly as before, but the
  VM forks from the parent's shared memory image and hydrates
  post-copy style — the flash-crowd fast path.

Every decision appends one line to :attr:`placement_log` and emits a
``fleet``-category trace event, so two same-seed runs produce
byte-identical logs and traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.cluster.setup import preload_dataset
from repro.faults.spec import FaultKind
from repro.sim.periodic import PeriodicTask
from repro.vm.vm import VmState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.world import World
    from repro.fleet.demand import VmSpec
    from repro.fleet.hostview import FleetHostView
    from repro.fleet.pipeline import PlacementPipeline
    from repro.sched.planner import MigrationPlanner

__all__ = ["FleetScheduler", "FleetServiceConfig", "PendingBoot"]


@dataclass(frozen=True)
class FleetServiceConfig:
    """Knobs for the boot/retry/drain machinery."""

    #: image fetch + guest boot time; the window the boot ledger covers
    boot_delay_s: float = 0.5
    #: first retry delay after a failed placement
    retry_backoff_s: float = 1.0
    #: backoff multiplier per further attempt
    retry_backoff_factor: float = 2.0
    #: backoff ceiling
    retry_backoff_cap_s: float = 8.0
    #: placement attempts before a spec is rejected outright
    max_boot_attempts: int = 4
    #: how often a draining host re-checks for stragglers
    drain_check_interval_s: float = 1.0
    #: how long a departure waits to re-check a VM that is mid-migration
    depart_recheck_s: float = 1.0
    #: tenants eligible for clone boots (None = every tenant with a
    #: geometry-matching parent)
    clone_tenants: Optional[tuple] = None

    def __post_init__(self):
        if self.boot_delay_s < 0:
            raise ValueError("boot_delay_s must be non-negative")
        if self.max_boot_attempts < 1:
            raise ValueError("max_boot_attempts must be >= 1")
        if self.retry_backoff_s <= 0 or self.retry_backoff_factor < 1:
            raise ValueError("bad retry backoff")
        if self.drain_check_interval_s <= 0 or self.depart_recheck_s <= 0:
            raise ValueError("check intervals must be positive")


@dataclass
class PendingBoot:
    """A boot admitted by the pipeline but still inside its delay."""

    spec: "VmSpec"
    host: str
    attempt: int
    #: open async trace span for this boot (0 when tracing is off)
    span: int = 0


class FleetScheduler:
    """Boot placement + lifecycle service over one cluster world."""

    def __init__(self, world: "World", planner: "MigrationPlanner",
                 view: "FleetHostView", pipeline: "PlacementPipeline",
                 config: Optional[FleetServiceConfig] = None,
                 boot_fn: Optional[Callable] = None,
                 clone=None):
        self.world = world
        self.sim = world.sim
        self.planner = planner
        self.view = view
        self.pipeline = pipeline
        self.config = config or FleetServiceConfig()
        #: ``boot_fn(spec, host_name)`` materializes the VM; the default
        #: builds VM + namespace + placement + preloaded dataset
        self.boot_fn = boot_fn or self._default_boot
        #: optional :class:`~repro.clone.CloneManager`: tenants with a
        #: running geometry-matching VM boot via memory-image forks
        self.clone = clone
        #: scenario-placed VMs offered as clone parents (name list)
        self.clone_parents: list[str] = []
        self.tracer = world.tracer
        #: boots inside their boot delay, by VM name
        self.pending: dict[str, PendingBoot] = {}
        #: fleet-owned VMs currently alive, by VM name
        self.running: dict[str, "VmSpec"] = {}
        #: tenant of every VM the fleet ever booted (hostview input)
        self.tenant_by_vm: dict[str, str] = {}
        #: specs that exhausted their boot attempts
        self.rejected: list[str] = []
        #: deterministic, append-only decision log
        self.placement_log: list[str] = []
        self.counters = {
            "submitted": 0, "booted": 0, "retried": 0, "rejected": 0,
            "departed": 0, "drained_hosts": 0, "crash_requeued": 0,
            "cloned": 0,
        }
        self._drain_tasks: dict[str, PeriodicTask] = {}
        self._drain_spans: dict[str, int] = {}
        if world.faults is not None:
            world.faults.subscribe(self._on_fault)
        if self.clone is not None:
            self.clone.on_replica_failed = self._on_replica_failed

    # -- demand intake --------------------------------------------------------
    def run_demand(self, specs: list) -> None:
        """Schedule every spec's :meth:`submit` at its arrival time."""
        for spec in specs:
            self.sim.call_at(spec.arrival_s, self._arrive, spec)

    def _arrive(self, spec: "VmSpec") -> None:
        if self.tracer.enabled:
            self.tracer.instant(
                "fleet", "arrival", cat="fleet",
                args={"vm": spec.name, "tenant": spec.tenant,
                      "workload": spec.workload,
                      "memory_bytes": float(spec.memory_bytes)})
        self.submit(spec)

    # -- boot path ------------------------------------------------------------
    def submit(self, spec: "VmSpec", attempt: int = 1) -> Optional[str]:
        """Place ``spec`` through the pipeline; returns the chosen host
        (boot completes after the boot delay) or None on retry/reject."""
        if attempt == 1:
            self.counters["submitted"] += 1
        decision = self.pipeline.select(self.view.placeable_states(), spec)
        metrics = self.world.metrics
        if metrics.enabled:
            metrics.inc("fleet.submits")
            for fname, n in sorted(decision.rejected.items()):
                if n:
                    metrics.inc(f"fleet.reject_by_filter.{fname}", n)
        if decision.host is None:
            self._log(f"defer {spec.name}: no-valid-host "
                      f"attempt={attempt}")
            self._retry(spec, attempt, "no-valid-host")
            return None
        host = decision.host
        # charge the boot ledger NOW: migrations admitted during the
        # boot delay must see this claim (shared headroom truth)
        self.planner.reserve_boot(host, spec.memory_bytes)
        pb = PendingBoot(spec=spec, host=host, attempt=attempt)
        if self.tracer.enabled:
            pb.span = self.tracer.async_begin(
                "fleet", "boot", cat="fleet",
                args={"vm": spec.name, "tenant": spec.tenant,
                      "host": host, "attempt": attempt,
                      "memory_bytes": float(spec.memory_bytes)})
        self.pending[spec.name] = pb
        self._log(f"place {spec.name} -> {host} attempt={attempt}")
        self.sim.call_in(self.config.boot_delay_s,
                         self._complete_boot, spec.name)
        return host

    def _complete_boot(self, name: str) -> None:
        pb = self.pending.pop(name, None)
        if pb is None:
            return  # cancelled (its target host died mid-delay)
        spec = pb.spec
        image = self._clone_image_for(spec)
        if image is not None:
            self.boot_via_clone(spec, pb.host, image)
        else:
            self.boot_fn(spec, pb.host)
        # the VM's pages are resident/registered now; retire the claim
        self.planner.release_boot(pb.host, spec.memory_bytes)
        self.running[name] = spec
        self.tenant_by_vm[name] = spec.tenant
        self.counters["booted"] += 1
        metrics = self.world.metrics
        if metrics.enabled:
            metrics.inc("fleet.booted")
            metrics.histogram("fleet.boot_latency_s").observe(
                self.sim.now - spec.arrival_s)
        self._log(f"boot {name} on {pb.host}")
        if pb.span:
            self.tracer.async_end(pb.span)
        if spec.lifetime_s is not None:
            self.sim.call_in(spec.lifetime_s, self.depart, name)

    # -- clone boots ----------------------------------------------------------
    def register_clone_parent(self, name: str, tenant: str) -> None:
        """Offer a scenario-placed VM as a clone parent for ``tenant``
        (fleet-booted VMs are considered automatically)."""
        self.clone_parents.append(name)
        self.tenant_by_vm[name] = tenant

    def _clone_image_for(self, spec: "VmSpec"):
        """A usable parent image for ``spec``, capturing one on first
        use; None when clone provisioning does not apply."""
        if self.clone is None:
            return None
        allowed = self.config.clone_tenants
        if allowed is not None and spec.tenant not in allowed:
            return None
        # an existing image beats a fresh capture — even one whose
        # parent already departed (the image outlives the parent)
        for parent in sorted(self.clone.images):
            image = self.clone.image_for(parent)
            if image is None:
                continue
            if self.tenant_by_vm.get(parent) != spec.tenant:
                continue
            if float(image.n_pages) * image.page_size \
                    != float(spec.memory_bytes):
                continue
            parent_vm = self.world.vms.get(parent)
            parent_alive = (parent_vm is not None
                            and parent_vm.state is not VmState.TERMINATED)
            if image.ready or parent_alive:
                return image
        for parent in sorted(set(self.clone_parents) | set(self.running)):
            if self.tenant_by_vm.get(parent) != spec.tenant:
                continue
            vm = self.world.vms.get(parent)
            if vm is None or vm.state is VmState.TERMINATED \
                    or vm.migrating:
                continue
            if float(vm.memory_bytes) != float(spec.memory_bytes):
                continue
            return self.clone.snapshot(parent)
        return None

    def boot_via_clone(self, spec: "VmSpec", host_name: str,
                       image) -> None:
        """Fork ``spec`` from a parent image instead of a full-copy
        boot; same ledger, pipeline, and lifecycle as any other boot."""
        self.clone.boot_replica(spec.name, host_name, image,
                                reservation_bytes=spec.memory_bytes)
        self.counters["cloned"] += 1
        self._log(f"clone {spec.name} <- {image.parent} on {host_name}")
        if self.tracer.enabled:
            self.tracer.instant(
                "fleet", "boot-clone", cat="fleet",
                args={"vm": spec.name, "parent": image.parent,
                      "host": host_name, "image": image.name})

    def _on_replica_failed(self, name: str, reason: str) -> None:
        """The clone manager failed a replica (fault matrix): it is gone
        for good, like any crash-killed fleet VM."""
        if self.running.pop(name, None) is not None:
            self._log(f"lost {name}: {reason}")

    def _default_boot(self, spec: "VmSpec", host_name: str) -> None:
        world = self.world
        vm = world.add_vm(spec.name, spec.memory_bytes, host_name)
        ns = world.vmd.create_namespace(spec.name)
        world.hosts[host_name].place_vm(vm, spec.memory_bytes, ns)
        preload_dataset(vm, world.manager_of(host_name), spec.memory_bytes,
                        dirty_resident=(spec.workload == "oltp"))

    def _retry(self, spec: "VmSpec", attempt: int, reason: str) -> None:
        cfg = self.config
        if attempt >= cfg.max_boot_attempts:
            self.rejected.append(spec.name)
            self.counters["rejected"] += 1
            if self.world.metrics.enabled:
                self.world.metrics.inc("fleet.rejected")
            self._log(f"reject {spec.name}: {reason} "
                      f"after {attempt} attempts")
            if self.tracer.enabled:
                self.tracer.instant(
                    "fleet", "boot-reject", cat="fleet",
                    args={"vm": spec.name, "reason": reason,
                          "attempts": attempt})
            return
        delay = min(cfg.retry_backoff_cap_s,
                    cfg.retry_backoff_s
                    * cfg.retry_backoff_factor ** (attempt - 1))
        self.counters["retried"] += 1
        if self.tracer.enabled:
            self.tracer.instant(
                "fleet", "boot-retry", cat="fleet",
                args={"vm": spec.name, "reason": reason,
                      "attempt": attempt, "delay_s": delay})
        self.sim.call_in(delay, self.submit, spec, attempt + 1)

    # -- departures -----------------------------------------------------------
    def depart(self, name: str) -> None:
        """Tenant tear-down: the VM leaves the cluster for good."""
        spec = self.running.get(name)
        if spec is None:
            return  # already gone (fault-killed, double departure)
        vm = self.world.vms.get(name)
        if vm is None or vm.state is VmState.TERMINATED:
            self.running.pop(name, None)
            return  # a fault beat the tenant to it
        if vm.migrating:
            # mid-migration: let it land, then tear down
            self.sim.call_in(self.config.depart_recheck_s,
                             self.depart, name)
            return
        host = self.world.hosts[vm.host]
        self.planner.cancel(name)
        vm.terminate()
        host.memory.free_vm_memory(name)
        host.remove_vm(name)
        del self.world.vms[name]
        if self.clone is not None and self.clone.owns(name):
            self.clone.teardown(name)
        elif self.world.vmd is not None \
                and name in self.world.vmd.namespaces:
            self.world.vmd.release_namespace(name)
        if self.clone is not None:
            # an unfinished snapshot stream dies with its parent
            self.clone.on_parent_departed(name)
        del self.running[name]
        self.counters["departed"] += 1
        self._log(f"depart {name} from {host.name}")
        if self.tracer.enabled:
            self.tracer.instant(
                "fleet", "depart", cat="fleet",
                args={"vm": name, "host": host.name,
                      "tenant": spec.tenant})

    # -- decommission-drain ---------------------------------------------------
    def decommission(self, host_name: str) -> None:
        """Drain ``host_name`` and retire it once empty.

        Pending boots targeting the host are *not* cancelled — they
        complete and are then evacuated like any other resident (the
        host is leaving service, not dead).
        """
        if host_name in self._drain_tasks:
            return
        self.view.start_drain(host_name)
        self._log(f"drain {host_name}: start")
        if self.tracer.enabled:
            self._drain_spans[host_name] = self.tracer.async_begin(
                "fleet", "drain", cat="fleet",
                args={"host": host_name})
        self._drain_tasks[host_name] = PeriodicTask(
            self.sim, self.config.drain_check_interval_s,
            lambda now: self._check_drain(host_name),
            start_at=self.sim.now)

    def _check_drain(self, host_name: str) -> None:
        host = self.world.hosts[host_name]
        live = [n for n in sorted(host.vms)
                if host.vms[n].state is not VmState.TERMINATED]
        if not live:
            task = self._drain_tasks.pop(host_name)
            task.cancel()
            self.view.finish_drain(host_name)
            self.counters["drained_hosts"] += 1
            self._log(f"drain {host_name}: complete")
            span = self._drain_spans.pop(host_name, 0)
            if span:
                self.tracer.async_end(span)
            return
        for name in live:
            if host.vms[name].migrating:
                continue
            self.planner.request(name, host_name, ignore_cooldown=True)

    # -- fault reaction (satellite: crash during drain) -----------------------
    def _dead_hosts(self, spec) -> set:
        if spec.kind is FaultKind.HOST_CRASH:
            return {spec.target}
        if spec.kind is FaultKind.RACK_CRASH:
            topo = self.world.topology
            return {h for h in self.world.hosts
                    if topo is not None and topo.rack_of(h) == spec.target}
        if spec.kind is FaultKind.POD_CRASH:
            topo = self.world.topology
            return {h for h in self.world.hosts
                    if topo is not None and topo.pod_of(h) == spec.target}
        return set()

    def _on_fault(self, spec, phase: str) -> None:
        if phase != "inject":
            return
        dead = self._dead_hosts(spec)
        if not dead:
            return
        # fail pending boots targeting the dead hosts back into retry
        for name in sorted(self.pending):
            pb = self.pending[name]
            if pb.host not in dead:
                continue
            del self.pending[name]
            self.planner.release_boot(pb.host, pb.spec.memory_bytes)
            if pb.span:
                self.tracer.async_end(pb.span)
            self.counters["crash_requeued"] += 1
            self._log(f"requeue {name}: target {pb.host} crashed")
            if self.tracer.enabled:
                self.tracer.instant(
                    "fleet", "boot-requeue", cat="fleet",
                    args={"vm": name, "host": pb.host,
                          "kind": spec.kind.value})
            self._retry(pb.spec, pb.attempt, "target-crashed")
        # fleet-owned VMs the crash killed are gone for good
        for name in sorted(self.running):
            vm = self.world.vms.get(name)
            if vm is not None and vm.host in dead \
                    and vm.state is VmState.TERMINATED:
                del self.running[name]

    # -- reporting ------------------------------------------------------------
    def _log(self, message: str) -> None:
        self.placement_log.append(f"{message} @{self.world.now:g}s")

    def describe(self) -> str:
        c = self.counters
        return (f"fleet: {c['submitted']} submitted, {c['booted']} booted, "
                f"{c['retried']} retried, {c['rejected']} rejected, "
                f"{c['departed']} departed, "
                f"{c['drained_hosts']} hosts drained")
