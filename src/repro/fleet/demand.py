"""Tenant demand: deterministic, seeded VM arrival/departure streams.

The fleet scheduler is exercised by *churn* — tenants boot VMs, run
them for a while, and tear them down. :class:`DemandGenerator` turns a
seed plus a :class:`DemandConfig` into a fully materialized, sorted
list of :class:`VmSpec` arrivals; everything downstream (placement,
rebalancing, traces) is then a pure function of that list, so two
same-seed runs are byte-identical end to end.

Arrival intensity follows one of three shapes the datacenter literature
cares about:

* ``bursty`` — a square wave: quiet baseline traffic punctuated by
  periodic bursts of ``burst_factor``× the base rate (batch jobs,
  deploy waves);
* ``diurnal`` — a sinusoidal day/night cycle around the base rate
  (interactive tenants following the sun);
* ``flash-crowd`` — baseline traffic until ``flash_at``, then a single
  ``flash_factor``× spike for ``flash_duration_s`` (a viral event the
  scheduler must absorb, Moniruzzaman et al.'s scale-out trigger).

Within an interval, arrivals are Poisson draws; each arrival's tenant
is drawn from a truncated-Zipf popularity law (a few big tenants, a
long tail), its workload type picks the memory-size palette (``kv``
caches are smaller than ``oltp`` databases), and its lifetime is
exponential with a floor — sustained churn rather than one-shot load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = ["DemandConfig", "DemandGenerator", "VmSpec"]

PATTERNS = ("bursty", "diurnal", "flash-crowd")
MiB = float(2 ** 20)


@dataclass(frozen=True)
class VmSpec:
    """One requested VM: what a tenant asked the fleet to boot."""

    name: str
    tenant: str
    #: guest memory demand (also the cgroup reservation at boot)
    memory_bytes: float
    #: workload family, ``kv`` or ``oltp`` (size palette + dirty profile)
    workload: str
    #: simulation time the boot request arrives
    arrival_s: float
    #: how long the VM runs after booting; None = until the end
    lifetime_s: Optional[float] = None

    def describe(self) -> str:
        life = f"{self.lifetime_s:g}s" if self.lifetime_s else "forever"
        return (f"{self.name} tenant={self.tenant} {self.workload} "
                f"{self.memory_bytes / MiB:g}MiB life={life}")


@dataclass(frozen=True)
class DemandConfig:
    """Shape and intensity of the arrival/departure stream."""

    pattern: str = "bursty"
    #: stream horizon — no arrivals after this time
    horizon_s: float = 60.0
    #: baseline arrival intensity (VMs per second)
    base_rate_per_s: float = 0.5
    #: arrival-draw interval (rate is integrated per interval)
    interval_s: float = 1.0
    #: number of tenants in the Zipf popularity law
    n_tenants: int = 8
    #: Zipf skew (1.0 = classic; higher = heavier head)
    tenant_skew: float = 1.1
    #: mean exponential VM lifetime
    mean_lifetime_s: float = 25.0
    #: lifetime floor — nothing departs faster than this
    min_lifetime_s: float = 5.0
    #: probability an arrival is a kv-cache VM (else oltp)
    kv_fraction: float = 0.6
    #: memory-size palettes per workload family (bytes)
    kv_sizes: tuple = (8 * MiB, 12 * MiB, 16 * MiB)
    oltp_sizes: tuple = (16 * MiB, 24 * MiB, 32 * MiB)
    # bursty shape
    burst_period_s: float = 20.0
    burst_duty: float = 0.25
    burst_factor: float = 4.0
    # diurnal shape
    diurnal_period_s: float = 40.0
    diurnal_amplitude: float = 0.8
    # flash-crowd shape
    flash_at: float = 20.0
    flash_duration_s: float = 6.0
    flash_factor: float = 6.0
    seed: int = 0

    def __post_init__(self):
        if self.pattern not in PATTERNS:
            raise ValueError(f"unknown pattern: {self.pattern!r} "
                             f"(one of {PATTERNS})")
        if self.horizon_s <= 0 or self.interval_s <= 0:
            raise ValueError("horizon and interval must be positive")
        if self.base_rate_per_s < 0:
            raise ValueError("base_rate_per_s must be non-negative")
        if self.n_tenants < 1:
            raise ValueError("need at least one tenant")
        if not 0.0 <= self.kv_fraction <= 1.0:
            raise ValueError("kv_fraction must be in [0, 1]")
        if self.min_lifetime_s < 0 or self.mean_lifetime_s <= 0:
            raise ValueError("lifetimes must be positive")


@dataclass
class DemandGenerator:
    """Materializes the arrival stream for one scenario run."""

    config: DemandConfig = field(default_factory=DemandConfig)
    #: VM name prefix (specs are named ``<prefix><n>`` in arrival order)
    prefix: str = "vm"

    def rate_factor(self, t: float) -> float:
        """The pattern's intensity multiplier at time ``t`` (>= 0)."""
        cfg = self.config
        if cfg.pattern == "bursty":
            phase = (t % cfg.burst_period_s) / cfg.burst_period_s
            return cfg.burst_factor if phase < cfg.burst_duty else 1.0
        if cfg.pattern == "diurnal":
            return 1.0 + cfg.diurnal_amplitude * float(
                np.sin(2.0 * np.pi * t / cfg.diurnal_period_s))
        # flash-crowd
        if cfg.flash_at <= t < cfg.flash_at + cfg.flash_duration_s:
            return cfg.flash_factor
        return 1.0

    def generate(self) -> list[VmSpec]:
        """The full arrival stream, sorted by arrival time.

        Pure function of the config (including its seed): every random
        draw happens here, in a fixed order, so the stream — and any
        simulation driven by it — is deterministic.
        """
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        # tenant popularity: truncated Zipf over n_tenants
        ranks = np.arange(1, cfg.n_tenants + 1, dtype=float)
        tenant_p = ranks ** -cfg.tenant_skew
        tenant_p /= tenant_p.sum()
        specs: list[VmSpec] = []
        seq = 0
        t = 0.0
        while t < cfg.horizon_s:
            dt = min(cfg.interval_s, cfg.horizon_s - t)
            lam = cfg.base_rate_per_s * self.rate_factor(t) * dt
            for _ in range(int(rng.poisson(lam))):
                offset = float(rng.uniform(0.0, dt))
                tenant = f"t{int(rng.choice(cfg.n_tenants, p=tenant_p))}"
                if rng.uniform() < cfg.kv_fraction:
                    workload, sizes = "kv", cfg.kv_sizes
                else:
                    workload, sizes = "oltp", cfg.oltp_sizes
                memory = float(sizes[int(rng.integers(len(sizes)))])
                lifetime = max(cfg.min_lifetime_s,
                               float(rng.exponential(cfg.mean_lifetime_s)))
                specs.append(VmSpec(
                    name=f"{self.prefix}{seq}", tenant=tenant,
                    memory_bytes=memory, workload=workload,
                    arrival_s=round(t + offset, 6),
                    lifetime_s=round(lifetime, 6)))
                seq += 1
            t += dt
        # names were assigned in draw order; sort by (arrival, name) so
        # simultaneous arrivals keep a deterministic service order
        specs.sort(key=lambda s: (s.arrival_s, s.name))
        return specs
