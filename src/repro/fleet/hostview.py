"""The host-manager view: one snapshot of cluster state per decision.

Nova's scheduler never reads hypervisors directly — a host manager
maintains per-host state records that filters and weighers consume.
:class:`FleetHostView` is that layer for the sim: :meth:`refresh`
distills each host into a :class:`HostState` — resident bytes from the
memory manager, *reserved* bytes from the planner's in-flight ledger
(migrations underway plus boots inside their boot delay), health from
the tracker, rack from the topology, live-VM and per-tenant counts —
so initial placement and rebalancing admission share one headroom
truth with the migration planner instead of re-deriving their own.

Drain lifecycle lives here too: :meth:`start_drain` marks a host as
evacuating (placement filters reject it and the planner stops choosing
it as a migration destination), :meth:`finish_drain` retires it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.vm.vm import VmState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.world import World
    from repro.sched.planner import MigrationPlanner

__all__ = ["FleetHostView", "HostState"]


@dataclass
class HostState:
    """One host as the placement pipeline sees it."""

    name: str
    rack: Optional[str]
    usable_bytes: float
    #: bytes currently resident (the memory manager's truth)
    resident_bytes: float
    #: bytes in-flight work will claim here (migrations + pending boots)
    reserved_bytes: float
    #: health tracker state name ("UP", "DEGRADED", ...); "UP" when
    #: the scenario runs without a tracker
    health: str
    #: migrations this host participates in right now (src or dst)
    inflight: int
    draining: bool
    retired: bool
    #: live (non-terminated) VMs resident on the host
    vms: tuple = ()
    #: live VMs per tenant on this host (anti-affinity input)
    tenants: dict = field(default_factory=dict)
    #: live VMs across the host's whole rack (spread input)
    rack_load: int = 0
    #: enclosing fault domains (None on flat topologies / outside hosts)
    pod: Optional[str] = None
    az: Optional[str] = None
    #: live VMs across the host's pod / AZ (deep-spread inputs)
    pod_load: int = 0
    az_load: int = 0

    @property
    def free_bytes(self) -> float:
        """Headroom after charging everything already headed here."""
        return self.usable_bytes - self.resident_bytes \
            - self.reserved_bytes

    @property
    def usage_fraction(self) -> float:
        """Projected usage (resident + reserved) as a fraction of
        usable memory — the watermark the rebalancer compares."""
        if self.usable_bytes <= 0:
            return 1.0
        return (self.resident_bytes + self.reserved_bytes) \
            / self.usable_bytes


class FleetHostView:
    """Snapshots ``world`` + the planner ledger into host states.

    ``tenant_of`` maps a VM name to its tenant (None for VMs the fleet
    does not own — filler VMs, pre-placed scenario fixtures).
    ``exclude`` names hosts that are never placement candidates (VMD
    donor machines, client hosts).
    """

    def __init__(self, world: "World", planner: "MigrationPlanner",
                 health=None,
                 tenant_of: Optional[Callable[[str], Optional[str]]] = None,
                 exclude: tuple = ()):
        self.world = world
        self.planner = planner
        self.health = health
        self.tenant_of = tenant_of or (lambda vm_name: None)
        self.exclude = set(exclude)
        self.draining: set[str] = set()
        self.retired: set[str] = set()

    # -- drain lifecycle ------------------------------------------------------
    def start_drain(self, host: str) -> None:
        """Mark ``host`` as evacuating: no new boots land on it and the
        planner stops scoring it as a migration destination."""
        self.draining.add(host)
        self.planner.exclude_hosts.add(host)

    def finish_drain(self, host: str, retire: bool = True) -> None:
        """Drain complete: retire the host (default) or return it to
        service (an aborted decommission)."""
        self.draining.discard(host)
        if retire:
            self.retired.add(host)
        else:
            self.planner.exclude_hosts.discard(host)

    def is_available(self, host: str) -> bool:
        return host not in self.exclude and host not in self.draining \
            and host not in self.retired

    # -- snapshots ------------------------------------------------------------
    def refresh(self) -> dict[str, HostState]:
        """A fresh, deterministic (name-sorted) cluster snapshot."""
        world = self.world
        topo = world.topology
        rack_loads: dict[str, int] = {}
        pod_loads: dict[str, int] = {}
        az_loads: dict[str, int] = {}
        states: dict[str, HostState] = {}
        for name in sorted(world.hosts):
            if name in self.exclude:
                continue
            host = world.hosts[name]
            live = []
            tenants: dict[str, int] = {}
            for vm_name in sorted(host.vms):
                if host.vms[vm_name].state is VmState.TERMINATED:
                    continue
                live.append(vm_name)
                tenant = self.tenant_of(vm_name)
                if tenant is not None:
                    tenants[tenant] = tenants.get(tenant, 0) + 1
            rack = topo.rack_of(name) if topo is not None else None
            pod = topo.pod_of(name) if topo is not None else None
            az = topo.az_of(name) if topo is not None else None
            if rack is not None:
                rack_loads[rack] = rack_loads.get(rack, 0) + len(live)
            if pod is not None:
                pod_loads[pod] = pod_loads.get(pod, 0) + len(live)
            if az is not None:
                az_loads[az] = az_loads.get(az, 0) + len(live)
            health = "UP"
            if self.health is not None:
                health = self.health.state(name).name
            states[name] = HostState(
                name=name, rack=rack, pod=pod, az=az,
                usable_bytes=host.memory.usable_bytes(),
                resident_bytes=host.memory.total_resident_bytes(),
                reserved_bytes=self.planner.reserved_on(name),
                health=health,
                inflight=self.planner._inflight.get(name, 0),
                draining=name in self.draining,
                retired=name in self.retired,
                vms=tuple(live), tenants=tenants)
        for state in states.values():
            if state.rack is not None:
                state.rack_load = rack_loads.get(state.rack, 0)
            if state.pod is not None:
                state.pod_load = pod_loads.get(state.pod, 0)
            if state.az is not None:
                state.az_load = az_loads.get(state.az, 0)
        return states

    def placeable_states(self) -> list[HostState]:
        """Refreshed states of hosts placement may consider, sorted by
        name (the pipeline's deterministic candidate order)."""
        return [s for s in self.refresh().values()
                if not s.draining and not s.retired]
