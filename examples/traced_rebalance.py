#!/usr/bin/env python
"""End-to-end traced datacenter rebalance.

The same scenario as ``datacenter_rebalance.py`` — an overloaded rack
shedding VMs while the headroom-honeypot rack flaps — but run with a
live :class:`repro.obs.Tracer` bound to the sim clock. The run produces:

* ``trace_rebalance.json`` — Chrome trace-event JSON: open it in
  Perfetto (https://ui.perfetto.dev) or chrome://tracing to see one
  track per VM (migration + phase spans), per host (watermark alerts),
  plus planner / faults / vmd / per-channel network tracks;
* an ASCII Gantt chart of every migration phase, printed below, so the
  timeline is inspectable without leaving the terminal.

Because every timestamp comes from the simulation clock, two runs with
the same seed produce byte-identical trace files.

Run:  PYTHONPATH=src python examples/traced_rebalance.py
"""

from repro.experiments.datacenter import (
    DatacenterConfig,
    honeypot_schedule,
    make_datacenter,
)
from repro.metrics.ascii import span_timeline
from repro.obs import Tracer, spans_of, trace_to_chrome

UNTIL = 60.0
OUT = "trace_rebalance.json"


def main() -> None:
    tracer = Tracer()
    dc = make_datacenter(honeypot_schedule(), DatacenterConfig(),
                         tracer=tracer)
    dc.run(until=UNTIL)
    tracer.finish()

    print(f"rebalance done: {dc.outcome_counts()}; "
          f"dead VMs: {dc.dead_vms() or 'none'}")

    spans = spans_of(tracer)
    print(f"\ntrace: {len(tracer.events)} events, {len(spans)} spans")

    # Migration + phase spans as one Gantt: "<vm> <phase>" per row.
    rows = [(f"{s.track.split(':', 1)[1]} {s.name}", s.t0, s.t1)
            for s in spans
            if s.track.startswith("vm:") and s.cat in ("migration", "phase")]
    print("\nmigration phases (ASCII Gantt):")
    for line in span_timeline(rows, t0=0.0, t1=UNTIL):
        print(line)

    # Fault outages share the same axis, for cause/effect reading.
    faults = [(f"fault {s.name} {s.args.get('target', '')}", s.t0, s.t1)
              for s in spans if s.cat == "fault"]
    if faults:
        print("\nfault outages:")
        for line in span_timeline(faults, t0=0.0, t1=UNTIL):
            print(line)

    path = trace_to_chrome(tracer, OUT)
    print(f"\nwrote {path} — load it in Perfetto or chrome://tracing")


if __name__ == "__main__":
    main()
