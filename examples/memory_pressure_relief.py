#!/usr/bin/env python
"""Relieving memory pressure: pre-copy vs post-copy vs Agile.

Reproduces the §V-A experiment (Figures 4-6): four 10 GB VMs on a 23 GB
source host each serve a 9 GB Redis dataset to external YCSB clients;
the queried range ramps from 200 MB to 6 GB per client starting at
150 s, the host starts thrashing, and one VM is migrated away at 400 s.
The script prints an ASCII timeline of average YCSB throughput plus the
migration report for each technique.

This is the full-scale calibrated scenario; expect a few minutes of
wall-clock time.

Run:  python examples/memory_pressure_relief.py
      python examples/memory_pressure_relief.py --quick   # ~10 s smoke run
"""

import argparse

import numpy as np

from repro.cluster.scenarios import TestbedConfig, make_pressure_scenario
from repro.metrics.ascii import sparkline as spark
from repro.util import GiB

MIGRATE_AT = 400.0


def main(argv=None) -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--quick", action="store_true",
                        help="scaled-down run (~10 s instead of minutes)")
    args = parser.parse_args(argv)
    # --quick shrinks the VMs 8x but keeps the same pressure shape:
    # four working sets still oversubscribe the source host.
    scale = 8.0 if args.quick else 1.0
    for technique in ("pre-copy", "post-copy", "agile"):
        lab = make_pressure_scenario(
            technique, "kv",
            vm_memory_bytes=10 * GiB / scale,
            host_memory_bytes=23 * GiB / scale,
            reservation_bytes=6 * GiB / scale,
            kv_dataset_bytes=9 * GiB / scale,
            config=TestbedConfig(seed=7))
        lab.run_until_migrated(start=MIGRATE_AT, limit=5000.0, settle=150.0)
        r = lab.report
        w = lab.world
        series = [w.recorder.series(f"vm{i}.throughput") for i in range(4)]
        end = r.end_time + 150.0
        avg = np.mean([s.between(0, end).v for s in series], axis=0)

        print(f"\n=== {technique} ===")
        print(f"timeline (0..{end:.0f} s; ramp at 150 s, migration at "
              f"{MIGRATE_AT:.0f} s):")
        print("  " + spark(avg))
        print(f"  migration time {r.total_time:7.1f} s | data "
              f"{r.total_bytes / GiB:5.2f} GiB | downtime "
              f"{r.downtime * 1e3:6.0f} ms | rounds {r.rounds}")
        during = np.mean([s.between(MIGRATE_AT, r.end_time).mean()
                          for s in series])
        after = np.mean([s.between(r.end_time + 30, end).mean()
                         for s in series])
        print(f"  avg YCSB during migration {during:8.0f} ops/s; "
              f"after relief {after:8.0f} ops/s")


if __name__ == "__main__":
    main()
