#!/usr/bin/env python
"""Flash-crowd scale-out with memory-streaming clones.

A hot tenant's single parent VM suddenly needs six serving replicas
while background churn keeps the cluster busy. The clone path snapshots
the parent's memory into a shared VMD image once; every replica forks
against it and hydrates post-copy style — demand-fetch the hot set,
start serving, gather the cold tail in the background, privatize
dirtied pages into a per-replica copy-on-write overlay.

The run prints the clone manager's event log — the snapshot, each
fork, each replica reaching *serving*, full hydration — then compares
against the full-copy baseline (stream the parent's entire memory to
every replica before it serves) on the two headline metrics: time to N
serving replicas and bytes moved to get there. This is the ablation CI
gates on.

Run:  PYTHONPATH=src python examples/flash_crowd_clone.py
"""

from repro.experiments.flashcrowd import (
    flashcrowd_ablation,
    flashcrowd_run,
    quick_config,
)
from repro.util import MiB


def main() -> None:
    print("=== Flash crowd: one parent, six clone forks ===")
    res = flashcrowd_run(quick_config(seed=0))
    cfg = res["scenario"].config
    print(f"{res['arrivals']} arrivals ({cfg.n_replicas} hot); "
          f"{res['summary']}")
    print("clone log:")
    for line in res["clone_log"]:
        print(f"  {line}")
    print(f"time to {cfg.serving_target} serving: "
          f"{res['time_to_n_serving']:.2f}s after the flash; "
          f"{res['bytes_to_serving'] / MiB:.1f} MiB moved by then "
          f"({res['provision_bytes'] / MiB:.1f} MiB total)")

    print()
    print("=== Ablation: clone forks vs full-copy boots ===")
    ab = flashcrowd_ablation(seed=0, quick=True)
    for label in ("clone", "fullcopy"):
        arm = ab[label]
        print(f"{label:>9s}: {arm['time_to_n_serving']:5.2f}s to N "
              f"serving, {arm['bytes_to_serving'] / MiB:6.1f} MiB "
              f"moved by then, "
              f"{arm['provision_bytes'] / MiB:6.1f} MiB total")
    verdict = "wins" if ab["clone_wins_time"] else "LOSES"
    print(f"clone provisioning {verdict} on time to N serving replicas")


if __name__ == "__main__":
    main()
