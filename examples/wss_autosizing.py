#!/usr/bin/env python
"""Transparent working-set tracking (§V-D, Figures 9-10).

A 5 GB VM holds a 1.5 GB Redis dataset. The hypervisor-side tracker
watches per-VM swap activity (the iostat signal) and walks the cgroup
reservation down to the true working set with α = 0.95 / β = 1.03 /
τ = 4 KB/s — no guest agent involved. Halfway through, the client starts
querying a larger slice of the dataset, and the tracker re-converges
upward. The script prints reservation-vs-WSS and throughput timelines.

Run:  python examples/wss_autosizing.py
"""

import numpy as np

from repro.cluster.scenarios import TestbedConfig, make_wss_lab
from repro.metrics.ascii import sparkline
from repro.util import GiB, MiB


def chart(times, values, label, width=68, unit=1.0):
    v = np.asarray(values) / unit
    print(f"  {label:22s} |{sparkline(v, width)}| max={v.max():,.0f}")


def main() -> None:
    cfg = TestbedConfig(seed=11)
    # Phase 1 (0-400 s): query 1.0 GB of the dataset.
    # Phase 2 (400-800 s): query the full 1.5 GB -> WSS grows by 50 %.
    lab = make_wss_lab(
        vm_memory_bytes=5 * GiB, dataset_bytes=1.5 * GiB,
        query_plan=[(0.0, 1.0 * GiB), (400.0, 1.5 * GiB)],
        config=cfg)
    lab.run(until=800.0)

    rec = lab.world.recorder
    res = rec.series("vm0.reservation")
    tput = rec.series("vm0.throughput").resample(5.0)

    print("Working-set tracking for a 5 GiB VM (dataset 1.0 -> 1.5 GiB "
          "at t=400 s)\n")
    chart(res.t, res.v, "reservation (MiB)", unit=MiB)
    chart(tput.t, tput.v, "YCSB ops/s")

    for t0, t1, label in [(100, 400, "phase 1 (1.0 GiB WSS)"),
                          (500, 800, "phase 2 (1.5 GiB WSS)")]:
        window = res.between(t0 + 100, t1)
        print(f"\n  {label}: reservation settled at "
              f"{window.mean() / MiB:,.0f} MiB "
              f"(true working set ≈ {(1.0 if t1 <= 400 else 1.5) * 1024:,.0f}"
              f" MiB)")
    print(f"\n  tracker mode at end: "
          f"{'fast (2 s)' if lab.tracker.in_fast_mode else 'slow (30 s)'}")


if __name__ == "__main__":
    main()
