#!/usr/bin/env python
"""A day in the life of the fleet scheduler.

A three-rack cluster under sustained tenant churn: a seeded bursty
demand stream boots KV and OLTP VMs through the nova-style
filter/weigher pipeline, leases expire and VMs depart, one host is
decommissioned mid-run (its residents evacuate through the planner),
and the destination-swap rebalancer sheds whatever the churn piles up.

The run prints the scheduler's placement log — every boot, retry,
departure, and drain decision with its sim-time — then the rebalance
moves, and finally compares the two rebalance strategies on the same
flash-crowd demand stream (the ablation CI gates on).

Run:  PYTHONPATH=src python examples/fleet_churn.py
"""

from repro.experiments.fleet import fleet_ablation, fleet_run, quick_config
from repro.util import MiB


def main() -> None:
    print("=== Fleet churn: boots, departures, a drain, rebalancing ===")
    res = fleet_run(quick_config(seed=0))
    print(f"{res['arrivals']} tenant arrivals over 20 s; "
          f"{res['summary']}")
    print("placement log:")
    for line in res["placement_log"]:
        print(f"  {line}")
    if res["rebalance_log"]:
        print("rebalance moves:")
        for line in res["rebalance_log"]:
            print(f"  {line}")
    reb = res["rebalance"]
    print(f"rebalancer: {reb['moves']} moves ({reb['swaps']} swaps), "
          f"{res['migration_bytes'] / MiB:.1f} MiB migrated, "
          f"{res['alive']} VMs alive at end")

    print()
    print("=== Ablation: destination-swap vs greedy rebalancing ===")
    ab = fleet_ablation(seed=0, quick=True)
    for label in ("greedy", "swap"):
        arm = ab[label]
        print(f"{label:>7s}: {arm['migration_bytes'] / MiB:6.1f} MiB "
              f"migrated, {arm['rebalance']['moves']} moves "
              f"({arm['rebalance']['swaps']} swaps), "
              f"{arm['rebalance']['overloaded_seen']} overloaded-host "
              f"sightings, {len(arm['rejected'])} rejected boots")
    verdict = "wins" if ab["swap_wins_bytes"] else "LOSES"
    print(f"destination-swap {verdict} on total migration bytes")


if __name__ == "__main__":
    main()
