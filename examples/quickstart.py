#!/usr/bin/env python
"""Quickstart: migrate one busy VM with Agile migration.

Builds a two-host cluster plus a VMD intermediate, runs a Redis-like
key-value workload inside a VM whose memory exceeds the host, and
performs an Agile live migration — then prints the migration report and
before/after application throughput.

Run:  python examples/quickstart.py
"""

from repro.cluster.scenarios import TestbedConfig, make_single_vm_lab
from repro.util import GiB


def main() -> None:
    cfg = TestbedConfig(seed=42)
    # A 10 GB VM on a 6 GB host: almost half its memory lives on the
    # per-VM swap device (a VMD namespace backed by remote memory).
    lab = make_single_vm_lab("agile", vm_memory_bytes=10 * GiB, busy=True,
                             host_memory_bytes=6 * GiB,
                             dst_memory_bytes=16 * GiB,  # roomy destination
                             config=cfg)
    vm = lab.migrate_vm
    print(f"VM: {vm.name}, {vm.memory_bytes / GiB:.0f} GiB memory, "
          f"{vm.pages.resident_bytes() / GiB:.2f} GiB resident, "
          f"{vm.pages.swapped_bytes() / GiB:.2f} GiB on the per-VM swap")

    # Warm up, migrate at t=60 s.
    lab.run_until_migrated(start=60.0, limit=4000.0)
    r = lab.report

    # The per-VM cgroup reservation travels with the VM; on the roomy
    # destination the WSS tracker would grow it — do that by hand here
    # so the workload can pull its whole dataset out of the VMD.
    dst_binding = lab.dst.memory.binding(vm.name)
    dst_binding.cgroup.set_reservation(vm.memory_bytes)
    lab.world.run(until=r.end_time + 420.0)

    print(f"\nAgile migration of {r.vm_name}:")
    print(f"  total migration time : {r.total_time:8.1f} s")
    print(f"  downtime             : {r.downtime * 1e3:8.0f} ms")
    print(f"  page data transferred: {r.total_bytes / GiB:8.2f} GiB")
    print(f"  cold pages skipped   : {r.pages_skipped_swapped:8d} "
          f"(served later from the VMD)")
    print(f"  demand-paged pages   : {r.pages_demand_fetched:8d}")

    tput = lab.world.recorder.series(f"{vm.name}.throughput")
    before = tput.between(30.0, 60.0).mean()
    after = tput.between(r.end_time + 360, r.end_time + 420).mean()
    print(f"\nYCSB throughput: {before:8.0f} ops/s before migration")
    print(f"                 {after:8.0f} ops/s after warming up at "
          f"{vm.host!r} (cold pages stream in from the VMD)")


if __name__ == "__main__":
    main()
