#!/usr/bin/env python
"""Fast server deprovisioning with Scatter-Gather migration.

Extension demo: the source host must be evacuated *now* (maintenance,
spot reclaim). Direct migration is paced by the destination; the
Scatter-Gather engine (the Agile authors' companion system) instead
stages the VM's resident pages onto VMD intermediaries at source-NIC
speed and lets the destination gather them in the background — the
source is free in a fraction of the time.

Run:  python examples/fast_deprovisioning.py
"""

from repro.cluster.scenarios import TestbedConfig, make_single_vm_lab
from repro.core import ScatterGatherMigration
from repro.util import GiB


def evacuate(technique: str) -> tuple[float, float]:
    """Returns (seconds until the source is free, GiB moved)."""
    lab = make_single_vm_lab("agile", 10 * GiB, busy=True,
                             config=TestbedConfig(seed=9))
    if technique == "scatter-gather":
        def launch():
            lab.manager = ScatterGatherMigration(
                lab.world.sim, lab.world.network, lab.src, lab.dst,
                lab.migrate_vm, lab.world.recorder,
                config=lab.config.migration,
                workload=lab.workload_of(lab.migrate_vm),
                gather_bps=40e6)
            lab.world.engine.add_participant(lab.manager, order=0)
            lab.manager.start()
        lab._launch = launch
    lab.run_until_migrated(start=30.0, limit=4000.0, settle=30.0)
    r = lab.report
    freed = (r.source_free_time or r.end_time) - r.start_time
    if technique == "scatter-gather":
        print(f"    gather continues in the background: "
              f"{r.gather_bytes / GiB:.2f} GiB prefetched so far; "
              f"{lab.migrate_vm.pages.swapped_pages()} pages still cold")
    return freed, r.total_bytes / GiB


def main() -> None:
    print("Evacuating a busy 10 GiB VM from a 6 GB host:\n")
    for technique in ("agile", "scatter-gather"):
        print(f"  {technique}:")
        freed, gib = evacuate(technique)
        print(f"    source free after {freed:6.1f} s "
              f"({gib:.2f} GiB over the wire)\n")


if __name__ == "__main__":
    main()
