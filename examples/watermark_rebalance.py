#!/usr/bin/env python
"""End-to-end automatic rebalancing (§III-B): watermark trigger + Agile.

Four VMs with WSS trackers run on one host; their working sets grow over
time. When the aggregate tracked WSS crosses the high watermark, the
trigger selects the fewest VMs to push the aggregate below the low
watermark and launches Agile migrations for them. This example wires
trigger → selection → migration manager — the full control loop the
paper describes but only evaluates piecewise.

Run:  python examples/watermark_rebalance.py
"""

from repro.cluster.scenarios import TestbedConfig, make_pressure_scenario
from repro.core import AgileMigration, WatermarkTrigger, WssTracker
from repro.core.trigger import WatermarkConfig
from repro.core.wss import WssTrackerConfig
from repro.util import GiB

CFG = TestbedConfig(seed=5)


def main() -> None:
    # Reuse the pressure scenario plumbing but do NOT schedule a manual
    # migration: the trigger decides when and which VM moves.
    # Start with small reservations (as if the trackers had converged
    # during the quiet 200 MB phase); they grow with the load ramp until
    # the aggregate crosses the high watermark.
    lab = make_pressure_scenario("agile", "kv", reservation_bytes=2 * GiB,
                                 config=CFG)
    world = lab.world
    src, dst = lab.src, lab.dst

    trackers = {
        vm.name: WssTracker(
            world.sim, vm.name,
            lambda vm=vm: world.manager_of(vm.host),
            world.recorder,
            config=WssTrackerConfig(min_reservation_bytes=1 * GiB),
            max_reservation_bytes=8 * GiB)
        for vm in lab.vms
    }
    managers = []

    def launch_migrations(names):
        print(f"[{world.now:7.1f}s] trigger: migrating {names} "
              f"(aggregate WSS over high watermark)")
        for name in names:
            vm = world.vms[name]
            trackers[name].stop()  # hand control to the migration
            mgr = AgileMigration(world.sim, world.network, src, dst, vm,
                                 world.recorder, config=CFG.migration,
                                 workload=lab.workload_of(vm))
            world.engine.add_participant(mgr, order=0)
            mgr.start()
            managers.append(mgr)
            mgr.done.add_callback(lambda ev: print(
                f"[{world.now:7.1f}s] migration of "
                f"{ev.value.vm_name} done: "
                f"{ev.value.total_time:.0f}s, "
                f"{ev.value.total_bytes / GiB:.2f} GiB"))

    trigger = WatermarkTrigger(
        world.sim, usable_bytes=src.memory.usable_bytes(),
        wss_of=lambda: {name: tr.estimated_wss_bytes()
                        for name, tr in trackers.items()
                        if not world.vms[name].migrating
                        and world.vms[name].host == "src"},
        migrate=launch_migrations,
        recorder=world.recorder,
        config=WatermarkConfig(high_watermark=0.95, low_watermark=0.80,
                               check_interval_s=10.0))

    print("Running: working sets ramp from 200 MB to 6 GiB per VM "
          "(staggered)...")
    world.run(until=900.0)

    agg = world.recorder.series("trigger.aggregate_wss")
    print(f"\naggregate tracked WSS at end: {agg.v[-1] / GiB:.1f} GiB "
          f"(host usable: {src.memory.usable_bytes() / GiB:.1f} GiB)")
    print(f"trigger fired {trigger.trigger_count} time(s); "
          f"{len(managers)} migration(s) launched")
    placement = {h: sorted(world.hosts[h].vms) for h in world.hosts}
    print(f"final placement: {placement}")


if __name__ == "__main__":
    main()
