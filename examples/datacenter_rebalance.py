#!/usr/bin/env python
"""Datacenter rebalance under a correlated rack failure.

Three racks behind oversubscribed ToR uplinks: rack r0 is overloaded
(every host over its high watermark), the middle rack holds lightly
loaded hosts, and the last rack r2 has big empty machines — on headroom
alone the best destination in the cluster. Mid-rebalance r2 crashes
(power/ToR event: links dark, VMs gone). The control plane's health
tracker marks the whole rack DOWN, the planner routes the shed VMs to
the healthy middle rack instead, and the supervisor re-plans any
migration already pointed at the dead rack.

Run:  PYTHONPATH=src python examples/datacenter_rebalance.py
"""

from repro.experiments.datacenter import (
    DatacenterConfig,
    honeypot_schedule,
    make_datacenter,
)

UNTIL = 60.0


def main() -> None:
    dc = make_datacenter(honeypot_schedule(), DatacenterConfig())
    world, control = dc.world, dc.control

    print("topology:")
    for line in dc.topology.describe():
        print(f"  {line}")
    print(f"hot VMs on rack r0: {', '.join(dc.hot_vms)}")

    # Narrate health transitions as the tracker sees fault events.
    def on_health(host, old, new):
        print(f"[{world.now:6.1f}s] health: {host} "
              f"{old.name} -> {new.name}")

    if control.health is not None:
        control.health.subscribe(on_health)

    dc.run(until=UNTIL)

    print("\nplanner decisions (the determinism witness):")
    for line in control.planner.log:
        print(f"  {line}")

    print("\nfault timeline:")
    for line in world.faults.log.describe():
        print(f"  {line}")

    print("\nmigration attempts:")
    for r in control.supervisor.attempts:
        outcome = r.outcome.value if r.outcome else "in-flight"
        print(f"  {r.vm_name}: {r.src_host} -> {r.dst_host} "
              f"attempt {r.attempt}: {outcome}")

    print(f"\noutcomes:        {dc.outcome_counts()}")
    print(f"unavailable (s): {dc.vm_unavailable_seconds(UNTIL):g}")
    print(f"dead VMs:        {dc.dead_vms() or 'none'}")
    print("final placement:")
    for name in sorted(world.hosts):
        vms = sorted(world.hosts[name].vms)
        if vms:
            print(f"  {name}: {', '.join(vms)}")


if __name__ == "__main__":
    main()
