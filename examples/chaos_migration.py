#!/usr/bin/env python
"""Chaos testing live migration: inject faults, watch recovery happen.

Four scenarios on a scaled-down two-host lab:

1. pre-copy + transient destination crash — the migration aborts cleanly
   (the VM keeps running at the source) and a supervisor retries it with
   exponential backoff until it completes;
2. post-copy + destination crash in the split-state window — the VM's
   state is divided between the two hosts, so the crash is fatal;
3. Agile + VMD donor crash with replication 2 — reads fail over to the
   surviving replica, the migration completes, and the namespace
   re-replicates the lost copies in the background;
4. a seeded random fault schedule — run twice to show the fault
   timeline and outcome are bit-for-bit reproducible.

Run:  python examples/chaos_migration.py
"""

import numpy as np

from repro.cluster.scenarios import TestbedConfig, make_single_vm_lab
from repro.core.base import MigrationConfig
from repro.faults import FaultKind, FaultSchedule, FaultSpec, RetryPolicy
from repro.metrics import fault_log_to_dict
from repro.util import GiB, KiB, MiB


def make_lab(technique, **kw):
    cfg = TestbedConfig(
        dt=0.1, seed=0, page_size=4096,
        net_bandwidth_bps=10e6, net_latency_s=1e-4,
        ssd_read_bps=5e6, ssd_write_bps=3e6,
        ssd_capacity_bytes=1 * GiB, vmd_server_bytes=1 * GiB,
        host_os_bytes=1 * MiB,
        vmd_servers=kw.pop("vmd_servers", 2),
        vmd_replication=kw.pop("vmd_replication", 1),
        migration=MigrationConfig(backlog_cap_bytes=2 * MiB,
                                  stopcopy_threshold_bytes=256 * KiB))
    return make_single_vm_lab(
        technique, kw.pop("vm_mib", 16) * MiB, busy=False,
        host_memory_bytes=64 * MiB,
        reservation_bytes=kw.pop("reservation_mib", 32) * MiB,
        config=cfg, **kw)


def run_chaos(lab, schedule, policy=None, limit=400.0):
    injector = lab.world.attach_faults(schedule)
    lab.start_supervised_migration_at(
        2.0, policy=policy or RetryPolicy(max_retries=0))
    lab.world.run(until=2.0)
    try:
        lab.world.sim.run_until_event(lab.final, limit=limit)
    except Exception:
        pass
    return injector.log


def show(title, lab, log):
    vm = lab.migrate_vm
    print(f"\n=== {title} ===")
    for a in lab.supervisor.attempts:
        print(f"  attempt {a.attempt}: {a.outcome.value}"
              + (f" ({a.failure_reason})" if a.failure_reason else ""))
    print(f"  VM: {vm.state.value} on {vm.host}")
    stats = fault_log_to_dict(log, until=lab.world.now)
    print(f"  faults: {len(stats['events'])} events, "
          f"MTTR {stats['mttr'] or 0:.1f} s, "
          f"VM-unavailable {stats['vm_unavailable_seconds']:.1f} s")


def main() -> None:
    # 1. pre-copy rides out a destination reboot via supervised retry
    lab = make_lab("pre-copy")
    log = run_chaos(
        lab,
        FaultSchedule([FaultSpec(FaultKind.HOST_CRASH, "dst",
                                 at=2.5, duration=5.0)]),
        policy=RetryPolicy(max_retries=3, backoff_s=2.0))
    show("pre-copy + transient dst crash (supervised retry)", lab, log)

    # 2. post-copy is killed by the same crash: split-state window
    lab = make_lab("post-copy")
    log = run_chaos(
        lab, FaultSchedule([FaultSpec(FaultKind.HOST_CRASH, "dst",
                                      at=2.5)]))
    lab.world.run(until=lab.world.now + 10.0)  # the outage accrues
    show("post-copy + dst crash in the split-state window", lab, log)

    # 3. Agile survives losing a VMD donor when replication >= 2
    lab = make_lab("agile", reservation_mib=8, vmd_servers=3,
                   vmd_replication=2)
    ns = lab.world.vmd.namespaces["vm0"]
    log = run_chaos(
        lab, FaultSchedule([FaultSpec(FaultKind.VMD_CRASH, "vmdsrv0",
                                      at=2.3, lose_contents=True)]))
    lab.world.run(until=lab.world.now + 60.0)  # let the repair drain
    show("Agile + donor loss, replication=2", lab, log)
    print(f"  re-replicated {ns.repaired_bytes / MiB:.1f} MiB onto "
          f"surviving donors; repair backlog "
          f"{ns.repair_pending_bytes:.0f} B")

    # 4. seeded chaos is reproducible
    def chaos_run():
        lab = make_lab("pre-copy")
        rng = np.random.default_rng(2016)
        schedule = FaultSchedule.random(
            rng, 10.0, hosts=["src"], ssds=["ssd.src"],
            mean_interval_s=1.5, mean_duration_s=2.0,
            lose_contents=False)
        log = run_chaos(lab, schedule,
                        policy=RetryPolicy(max_retries=3), limit=200.0)
        return lab, log
    lab1, log1 = chaos_run()
    lab2, log2 = chaos_run()
    show("seeded random chaos (seed=2016)", lab1, log1)
    same = log1.describe() == log2.describe()
    print(f"  identical timeline across two runs: {same}")
    assert same


if __name__ == "__main__":
    main()
